//! Representative subsetting — Section V-B/V-C of the paper
//! (Figs. 9–10, Table X).
//!
//! Application–input pairs are clustered hierarchically on their
//! principal-component coordinates; for every cluster count `k` the paper
//! evaluates the clustering SSE and the total execution time of a subset
//! built by taking the *shortest-running* member of each cluster, then picks
//! `k` at the Pareto-optimal trade-off of the two.

use stat_analysis::cluster::{agglomerative, Dendrogram, Linkage};
use stat_analysis::distance::Metric;
use stat_analysis::pareto::{knee_point, Candidate};
use stat_analysis::sse::total_sse;
use stat_analysis::StatsError;

use crate::characterize::CharRecord;

/// One point of the SSE/time trade-off curve (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Cluster count.
    pub k: usize,
    /// Clustering SSE at `k`.
    pub sse: f64,
    /// Projected execution seconds of the k-representative subset.
    pub subset_seconds: f64,
}

/// The chosen subset for one group of pairs (rate or speed).
#[derive(Debug, Clone)]
pub struct SubsetAnalysis {
    /// Pair ids, index-aligned with the clustering input.
    pub ids: Vec<String>,
    /// The merge tree (Fig. 9).
    pub dendrogram: Dendrogram,
    /// The full trade-off curve over `k = 1..=n` (Fig. 10).
    pub curve: Vec<TradeoffPoint>,
    /// The Pareto-knee cluster count.
    pub chosen_k: usize,
    /// Indices of the chosen representatives (one per cluster).
    pub representatives: Vec<usize>,
    /// Projected seconds of running every pair.
    pub full_seconds: f64,
    /// Projected seconds of running only the representatives.
    pub subset_seconds: f64,
}

impl SubsetAnalysis {
    /// Clusters `records` on `score_rows` and selects the Pareto-knee
    /// subset, mirroring the paper's procedure.
    ///
    /// # Errors
    ///
    /// Returns a [`StatsError`] for empty inputs or mismatched lengths.
    pub fn fit(
        records: &[&CharRecord],
        score_rows: &[Vec<f64>],
        linkage: Linkage,
    ) -> Result<Self, StatsError> {
        if records.len() != score_rows.len() {
            return Err(StatsError::DimensionMismatch {
                op: "subset fit",
                left: (records.len(), 1),
                right: (score_rows.len(), 1),
            });
        }
        if records.is_empty() {
            return Err(StatsError::Empty {
                what: "subset records",
            });
        }
        let dendrogram = agglomerative(score_rows, linkage, Metric::Euclidean)?;
        let n = records.len();
        let full_seconds: f64 = records.iter().map(|r| r.projected_seconds).sum();

        let mut curve = Vec::with_capacity(n);
        for k in 1..=n {
            let labels = dendrogram.cut(k)?;
            let sse = total_sse(score_rows, &labels)?;
            let reps = representatives_for(records, &labels, k);
            let subset_seconds: f64 = reps.iter().map(|&i| records[i].projected_seconds).sum();
            curve.push(TradeoffPoint {
                k,
                sse,
                subset_seconds,
            });
        }

        // The degenerate endpoints (k = 1: useless subset; k = n: no saving)
        // stay in the candidate set — dominance removes them naturally.
        let candidates: Vec<Candidate> = curve
            .iter()
            .map(|p| Candidate {
                id: p.k,
                cost_a: p.sse,
                cost_b: p.subset_seconds,
            })
            .collect();
        let chosen_k = knee_point(&candidates)?.id;
        let labels = dendrogram.cut(chosen_k)?;
        let representatives = representatives_for(records, &labels, chosen_k);
        let subset_seconds: f64 = representatives
            .iter()
            .map(|&i| records[i].projected_seconds)
            .sum();

        Ok(SubsetAnalysis {
            ids: records.iter().map(|r| r.id.clone()).collect(),
            dendrogram,
            curve,
            chosen_k,
            representatives,
            full_seconds,
            subset_seconds,
        })
    }

    /// Percentage of execution time saved by the subset vs the full group.
    pub fn saving_pct(&self) -> f64 {
        if self.full_seconds <= 0.0 {
            0.0
        } else {
            (1.0 - self.subset_seconds / self.full_seconds) * 100.0
        }
    }

    /// Ids of the chosen representatives, sorted alphabetically (the
    /// paper's Table X listing order).
    pub fn representative_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .representatives
            .iter()
            .map(|&i| self.ids[i].clone())
            .collect();
        ids.sort();
        ids
    }
}

/// Picks the shortest-running member of each cluster (the paper's rule).
fn representatives_for(records: &[&CharRecord], labels: &[usize], k: usize) -> Vec<usize> {
    let mut best: Vec<Option<usize>> = vec![None; k];
    for (i, &label) in labels.iter().enumerate() {
        let cur = &mut best[label];
        match cur {
            Some(j) if records[*j].projected_seconds <= records[i].projected_seconds => {}
            _ => *cur = Some(i),
        }
    }
    best.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_suite, RunConfig};
    use crate::redundancy::RedundancyAnalysis;
    use workload_synth::cpu2017;
    use workload_synth::profile::InputSize;

    fn analyzed() -> (Vec<CharRecord>, Vec<Vec<f64>>) {
        let apps = vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("519.lbm_r").unwrap(),
            cpu2017::app("525.x264_r").unwrap(),
            cpu2017::app("541.leela_r").unwrap(),
            cpu2017::app("548.exchange2_r").unwrap(),
            cpu2017::app("549.fotonik3d_r").unwrap(),
        ];
        let records = characterize_suite(&apps, InputSize::Ref, &RunConfig::quick()).unwrap();
        let analysis = RedundancyAnalysis::fit_paper(&records).unwrap();
        let rows = analysis.score_rows();
        (records, rows)
    }

    #[test]
    fn subset_shrinks_time() {
        let (records, rows) = analyzed();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let s = SubsetAnalysis::fit(&refs, &rows, Linkage::Average).unwrap();
        assert!(s.chosen_k >= 1 && s.chosen_k <= records.len());
        assert!(s.subset_seconds <= s.full_seconds);
        assert_eq!(s.representatives.len(), s.chosen_k);
        assert!(s.saving_pct() >= 0.0);
    }

    #[test]
    fn curve_is_complete_and_monotone_in_sse() {
        let (records, rows) = analyzed();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let s = SubsetAnalysis::fit(&refs, &rows, Linkage::Ward).unwrap();
        assert_eq!(s.curve.len(), records.len());
        assert!(s.curve.windows(2).all(|w| w[1].sse <= w[0].sse + 1e-9));
        // k = n has SSE 0 (all singletons).
        assert!(s.curve.last().unwrap().sse.abs() < 1e-9);
    }

    #[test]
    fn representatives_are_cluster_minima() {
        let (records, rows) = analyzed();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let s = SubsetAnalysis::fit(&refs, &rows, Linkage::Average).unwrap();
        let labels = s.dendrogram.cut(s.chosen_k).unwrap();
        for &rep in &s.representatives {
            let cluster = labels[rep];
            for (i, &l) in labels.iter().enumerate() {
                if l == cluster {
                    assert!(
                        records[rep].projected_seconds <= records[i].projected_seconds + 1e-12,
                        "rep {rep} not minimal in cluster {cluster}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_representative_per_cluster() {
        let (records, rows) = analyzed();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let s = SubsetAnalysis::fit(&refs, &rows, Linkage::Average).unwrap();
        let labels = s.dendrogram.cut(s.chosen_k).unwrap();
        let clusters: std::collections::HashSet<usize> =
            s.representatives.iter().map(|&i| labels[i]).collect();
        assert_eq!(clusters.len(), s.chosen_k);
    }

    #[test]
    fn mismatched_inputs_error() {
        let (records, rows) = analyzed();
        let refs: Vec<&CharRecord> = records.iter().collect();
        assert!(SubsetAnalysis::fit(&refs[..2], &rows, Linkage::Average).is_err());
        assert!(SubsetAnalysis::fit(&[], &[], Linkage::Average).is_err());
    }

    #[test]
    fn representative_ids_sorted() {
        let (records, rows) = analyzed();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let s = SubsetAnalysis::fit(&refs, &rows, Linkage::Average).unwrap();
        let ids = s.representative_ids();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
