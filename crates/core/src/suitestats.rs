//! Suite-level aggregation — the paper's Table II overview.

use stat_analysis::summary;
use workload_synth::profile::{AppProfile, InputSize, Suite};

use crate::cache::CacheContext;
use crate::characterize::{characterize_suite_with, CharRecord, RunConfig};
use crate::error::Result;

/// Average execution characteristics of one mini-suite at one input size
/// (one row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRow {
    /// Mini-suite.
    pub suite: Suite,
    /// Input size.
    pub size: InputSize,
    /// Number of application–input pairs aggregated.
    pub pairs: usize,
    /// Average paper-scale instruction count, billions.
    pub instructions_billions: f64,
    /// Average measured IPC.
    pub ipc: f64,
    /// Average projected execution time, seconds.
    pub execution_seconds: f64,
}

/// Aggregates records into Table II rows (suite-major, size-minor order).
///
/// Records not matching any (suite, size) combination simply produce no row.
pub fn table_two_rows(records: &[CharRecord]) -> Vec<SuiteRow> {
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        for size in InputSize::ALL {
            let subset: Vec<&CharRecord> = records
                .iter()
                .filter(|r| r.suite == suite && r.size == size)
                .collect();
            if subset.is_empty() {
                continue;
            }
            // The paper averages multi-input applications over their inputs
            // first, then averages applications.
            let mut by_app: std::collections::BTreeMap<&str, Vec<&CharRecord>> =
                std::collections::BTreeMap::new();
            for r in &subset {
                by_app.entry(r.app.as_str()).or_default().push(r);
            }
            let app_means = |f: fn(&CharRecord) -> f64| -> f64 {
                let means: Vec<f64> = by_app
                    .values()
                    .map(|rs| rs.iter().map(|r| f(r)).sum::<f64>() / rs.len() as f64)
                    .collect();
                summary::mean(&means).expect("non-empty suite")
            };
            rows.push(SuiteRow {
                suite,
                size,
                pairs: subset.len(),
                instructions_billions: app_means(|r| r.instructions_billions),
                ipc: app_means(|r| r.ipc),
                execution_seconds: app_means(|r| r.projected_seconds),
            });
        }
    }
    rows
}

/// Characterizes `apps` at every input size (cache-first when a context is
/// given) and aggregates the records into Table II rows — the one-call path
/// from a roster to the suite overview.
pub fn table_two_rows_cached(
    apps: &[AppProfile],
    config: &RunConfig,
    cache: Option<&CacheContext>,
) -> Result<Vec<SuiteRow>> {
    let mut records = Vec::new();
    for size in InputSize::ALL {
        records.extend(characterize_suite_with(apps, size, config, cache)?);
    }
    Ok(table_two_rows(&records))
}

/// Mean and standard deviation of a per-record metric over a record subset —
/// the building block of the Tables III–VII comparison rows.
pub fn mean_std<F: Fn(&CharRecord) -> f64>(records: &[&CharRecord], f: F) -> (f64, f64) {
    let values: Vec<f64> = records.iter().map(|r| f(r)).collect();
    let mean = summary::mean(&values).unwrap_or(0.0);
    let std = if values.len() >= 2 {
        summary::std_dev(&values).unwrap_or(0.0)
    } else {
        0.0
    };
    (mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_suite, RunConfig};
    use workload_synth::cpu2017;

    #[test]
    fn rows_cover_suites_and_sizes_present() {
        let apps = vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("619.lbm_s").unwrap(),
        ];
        let config = RunConfig::quick();
        let mut records = characterize_suite(&apps, InputSize::Test, &config).unwrap();
        records.extend(characterize_suite(&apps, InputSize::Ref, &config).unwrap());
        let rows = table_two_rows(&records);
        // 2 suites x 2 sizes.
        assert_eq!(rows.len(), 4);
        assert!(rows
            .iter()
            .any(|r| r.suite == Suite::RateInt && r.size == InputSize::Test));
        assert!(rows
            .iter()
            .any(|r| r.suite == Suite::SpeedFp && r.size == InputSize::Ref));
    }

    #[test]
    fn ref_rows_have_more_instructions_than_test() {
        let apps = vec![cpu2017::app("505.mcf_r").unwrap()];
        let config = RunConfig::quick();
        let mut records = characterize_suite(&apps, InputSize::Test, &config).unwrap();
        records.extend(characterize_suite(&apps, InputSize::Ref, &config).unwrap());
        let rows = table_two_rows(&records);
        let test_row = rows.iter().find(|r| r.size == InputSize::Test).unwrap();
        let ref_row = rows.iter().find(|r| r.size == InputSize::Ref).unwrap();
        assert!(ref_row.instructions_billions > test_row.instructions_billions * 5.0);
        assert!(ref_row.execution_seconds > test_row.execution_seconds);
    }

    #[test]
    fn multi_input_apps_average_inputs_first() {
        // gcc has 5 ref inputs; the row must count 5 pairs but weight gcc as
        // one application.
        let apps = vec![
            cpu2017::app("502.gcc_r").unwrap(),
            cpu2017::app("505.mcf_r").unwrap(),
        ];
        let config = RunConfig::quick();
        let records = characterize_suite(&apps, InputSize::Ref, &config).unwrap();
        let rows = table_two_rows(&records);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].pairs, 6);
        // Application-mean of instructions, not pair-mean.
        let gcc_mean = records
            .iter()
            .filter(|r| r.app == "502.gcc_r")
            .map(|r| r.instructions_billions)
            .sum::<f64>()
            / 5.0;
        let mcf = records
            .iter()
            .find(|r| r.app == "505.mcf_r")
            .unwrap()
            .instructions_billions;
        let expected = (gcc_mean + mcf) / 2.0;
        assert!((rows[0].instructions_billions - expected).abs() < 1e-9);
    }

    #[test]
    fn cached_table_two_matches_direct_aggregation() {
        let root =
            std::env::temp_dir().join(format!("workchar-suitestats-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = crate::cache::CacheContext::open(&root).unwrap();
        let apps = vec![cpu2017::app("505.mcf_r").unwrap()];
        let config = RunConfig::quick();
        let mut records = Vec::new();
        for size in InputSize::ALL {
            records.extend(characterize_suite(&apps, size, &config).unwrap());
        }
        let direct = table_two_rows(&records);
        let cold = table_two_rows_cached(&apps, &config, Some(&cache)).unwrap();
        let warm = table_two_rows_cached(&apps, &config, Some(&cache)).unwrap();
        assert_eq!(direct, cold);
        assert_eq!(cold, warm);
        assert_eq!(cache.stats.snapshot().hits, 3, "three sizes replayed");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mean_std_basics() {
        let apps = vec![cpu2017::app("541.leela_r").unwrap()];
        let records = characterize_suite(&apps, InputSize::Ref, &RunConfig::quick()).unwrap();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let (mean, std) = mean_std(&refs, |r| r.ipc);
        assert!(mean > 0.0);
        assert_eq!(std, 0.0, "single record has zero std");
    }
}
