//! The pipeline-wide error type.
//!
//! Every fallible public entry point in this crate — characterization,
//! dataset collection, experiment regeneration — returns [`Result`], whose
//! error side is the [`Error`] enum below. Each variant wraps (or renders)
//! the typed error of the layer it came from, so binaries can print one
//! human-readable diagnosis and exit nonzero instead of unwinding through a
//! panic.

use std::fmt;
use std::io;

use simstore::{CodecError, JobFailure};
use stat_analysis::StatsError;
use workload_synth::profile::InvalidBehavior;

/// Convenience alias used throughout the pipeline.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure a characterization campaign can surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A behaviour profile failed validation before trace generation.
    Behavior(InvalidBehavior),
    /// A statistics routine failed (empty input, dimension mismatch,
    /// non-convergence).
    Stats(StatsError),
    /// A cached record could not be decoded.
    Codec(CodecError),
    /// Filesystem trouble while reading or writing artifacts.
    Io(io::Error),
    /// One or more per-pair characterizations failed inside the scheduler.
    Characterization {
        /// The failed jobs, in submission order.
        failures: Vec<JobFailure>,
        /// How many pairs the campaign attempted.
        total: usize,
    },
    /// A static lint pass (`--lint` / the `lint` binary) found failing
    /// diagnostics; the report carries every violation with its rule code.
    Lint(simcheck::Report),
    /// A requested artifact or record was not available.
    MissingData(String),
    /// Bad command-line usage (binaries map this to exit code 2).
    Usage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Behavior(e) => write!(f, "{e}"),
            Error::Stats(e) => write!(f, "{e}"),
            Error::Codec(e) => write!(f, "result cache: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Characterization { failures, total } => {
                writeln!(
                    f,
                    "characterization failed for {} of {} pair(s):",
                    failures.len(),
                    total
                )?;
                for failure in failures {
                    writeln!(f, "  {failure}")?;
                }
                Ok(())
            }
            Error::Lint(report) => {
                write!(
                    f,
                    "lint failed ({}):\n{}",
                    report.summary(),
                    report.to_table()
                )
            }
            Error::MissingData(what) => write!(f, "missing data: {what}"),
            Error::Usage(what) => write!(f, "usage: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Behavior(e) => Some(e),
            Error::Stats(e) => Some(e),
            Error::Codec(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InvalidBehavior> for Error {
    fn from(e: InvalidBehavior) -> Self {
        Error::Behavior(e)
    }
}

impl From<StatsError> for Error {
    fn from(e: StatsError) -> Self {
        Error::Stats(e)
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Error::Codec(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<simcheck::Report> for Error {
    fn from(report: simcheck::Report) -> Self {
        Error::Lint(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_variant() {
        let behavior: Error = InvalidBehavior { what: "bad mix" }.into();
        assert!(behavior.to_string().contains("bad mix"));
        let stats: Error = StatsError::Empty { what: "records" }.into();
        assert!(stats.to_string().contains("records"));
        let codec: Error = CodecError::BadMagic.into();
        assert!(codec.to_string().contains("magic"));
        let io: Error = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        let usage = Error::Usage("unknown flag --frob".to_string());
        assert!(usage.to_string().contains("--frob"));
        let mut report = simcheck::Report::new();
        report.push(simcheck::Diagnostic::new(
            &simcheck::codes::P004,
            simcheck::Span::field("999.fake_r/ref/in1", "load_pct"),
            "mix sums to 120%".to_string(),
        ));
        let lint: Error = report.into();
        let text = lint.to_string();
        assert!(text.contains("P004"), "{text}");
        assert!(text.contains("1 error"), "{text}");
    }

    #[test]
    fn characterization_lists_failures() {
        let e = Error::Characterization {
            failures: vec![JobFailure {
                index: 3,
                label: "505.mcf_r/ref0".to_string(),
                message: "boom".to_string(),
            }],
            total: 47,
        };
        let text = e.to_string();
        assert!(text.contains("1 of 47"));
        assert!(text.contains("505.mcf_r/ref0"));
        assert!(text.contains("boom"));
    }

    #[test]
    fn sources_are_preserved() {
        let e: Error = StatsError::Empty { what: "x" }.into();
        assert!(std::error::Error::source(&e).is_some());
        let u = Error::MissingData("table2".to_string());
        assert!(std::error::Error::source(&u).is_none());
    }
}
