//! Static result auditing: the `R`-family rules of the `simcheck` catalog.
//!
//! Everything here inspects *already produced* artifacts — in-memory
//! [`CharRecord`]s, their sampled timelines, and cached `simstore` entries —
//! without re-running any simulation. The counter identities checked are
//! exact by construction in the engine (hit/miss partitions, branch-kind
//! partitions, telescoping timeline deltas), so any violation means the
//! record is corrupt, hand-edited, or produced by an incompatible engine
//! version rather than merely noisy.
//!
//! The campaign-facing entry points are [`check_campaign`] (profiles +
//! config, the `--lint` gate of the binaries) and [`audit_cache`] (every
//! entry of a results store). Both return a [`simcheck::Report`] that the
//! caller renders or converts into [`crate::error::Error::Lint`].

use simcheck::{codes, Diagnostic, Report, Span};
use simstore::Store;
use uarch_sim::config::SystemConfig;
use uarch_sim::counters::{Event, PerfSession};
use uarch_sim::timeline::CounterTimeline;
use workload_synth::profile::AppProfile;

use crate::cache::decode_record;
use crate::characterize::{CharRecord, RunConfig};

/// Relative tolerance for summary fields recomputed from raw counters.
/// Stored fields round-trip through an exact f64 codec, so disagreement
/// beyond a few ulps means divergent provenance, not rounding.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Audits one record's counter identities and derived summary fields
/// (rules `R001`–`R015`). `config` enables the machine-dependent checks
/// (`R006` IPC-vs-issue-width, `R013` projection consistency). The
/// record's timeline, when present, is audited too (`R010`/`R011`).
pub fn check_record(object: &str, r: &CharRecord, config: Option<&SystemConfig>) -> Report {
    let mut report = Report::new();
    let s = &r.session;
    let count = |e: Event| s.count(e);
    let inst = count(Event::InstRetiredAny);
    let cycles = count(Event::CpuClkUnhaltedRefTsc);
    let loads = count(Event::MemUopsRetiredAllLoads);
    let stores = count(Event::MemUopsRetiredAllStores);
    let branches = count(Event::BrInstExecAllBranches);
    let (l1h, l1m) = (
        count(Event::MemLoadUopsRetiredL1Hit),
        count(Event::MemLoadUopsRetiredL1Miss),
    );
    let (l2h, l2m) = (
        count(Event::MemLoadUopsRetiredL2Hit),
        count(Event::MemLoadUopsRetiredL2Miss),
    );
    let (l3h, l3m) = (
        count(Event::MemLoadUopsRetiredL3Hit),
        count(Event::MemLoadUopsRetiredL3Miss),
    );

    // Counter partitions are exact identities; sum in u128 so the audit
    // itself cannot overflow on a corrupted (e.g. all-0xff) record.
    let mut partition = |code, field: &str, parts: u128, whole: u128, what: &str| {
        if parts != whole {
            report.push(Diagnostic::new(
                code,
                Span::field(object, field),
                format!("{what}: parts sum to {parts}, whole is {whole}"),
            ));
        }
    };
    partition(
        &codes::R001,
        "l1",
        l1h as u128 + l1m as u128,
        loads as u128,
        "L1 hits + misses vs retired loads",
    );
    partition(
        &codes::R002,
        "l2",
        l2h as u128 + l2m as u128,
        l1m as u128,
        "L2 hits + misses vs L1 misses",
    );
    partition(
        &codes::R003,
        "l3",
        l3h as u128 + l3m as u128,
        l2m as u128,
        "L3 hits + misses vs L2 misses",
    );
    let kinds = count(Event::BrInstExecAllConditional) as u128
        + count(Event::BrInstExecAllDirectJmp) as u128
        + count(Event::BrInstExecAllDirectNearCall) as u128
        + count(Event::BrInstExecAllIndirectJumpNonCallRet) as u128
        + count(Event::BrInstExecAllIndirectNearReturn) as u128;
    partition(
        &codes::R004,
        "branch_kinds",
        kinds,
        branches as u128,
        "branch kind counters vs all executed branches",
    );

    let misp = count(Event::BrMispExecAllBranches);
    if misp > branches {
        report.push(Diagnostic::new(
            &codes::R005,
            Span::field(object, "mispredicts"),
            format!("{misp} mispredicts but only {branches} executed branches"),
        ));
    }

    let counter_ipc = if cycles > 0 {
        inst as f64 / cycles as f64
    } else {
        0.0
    };
    if let Some(system) = config {
        let width = system.issue_width as f64;
        if counter_ipc > width + REL_TOL {
            report.push(Diagnostic::new(
                &codes::R006,
                Span::field(object, "ipc"),
                format!("counter IPC {counter_ipc:.4} exceeds issue width {width}"),
            ));
        }
    }

    if inst > 0 && cycles == 0 {
        report.push(Diagnostic::new(
            &codes::R007,
            Span::field(object, "cycles"),
            format!("{inst} retired instructions but zero cycles"),
        ));
    }

    if cycles > 0 && !close(r.ipc, counter_ipc) {
        report.push(Diagnostic::new(
            &codes::R008,
            Span::field(object, "ipc"),
            format!(
                "stored IPC {} but counters give {counter_ipc} ({inst} inst / {cycles} cycles)",
                r.ipc
            ),
        ));
    }

    // Stored headline percentages must be recomputable from the counters.
    let rates: [(&str, f64, f64); 7] = [
        ("load_pct", r.load_pct, s.load_fraction() * 100.0),
        ("store_pct", r.store_pct, s.store_fraction() * 100.0),
        ("branch_pct", r.branch_pct, s.branch_fraction() * 100.0),
        ("l1_miss_pct", r.l1_miss_pct, s.l1_miss_rate() * 100.0),
        ("l2_miss_pct", r.l2_miss_pct, s.l2_miss_rate() * 100.0),
        ("l3_miss_pct", r.l3_miss_pct, s.l3_miss_rate() * 100.0),
        (
            "mispredict_pct",
            r.mispredict_pct,
            s.mispredict_rate() * 100.0,
        ),
    ];
    for (field, stored, derived) in rates {
        if !close(stored, derived) {
            report.push(Diagnostic::new(
                &codes::R009,
                Span::field(object, field),
                format!("stored {field} {stored} but counters give {derived}"),
            ));
        }
    }

    if let Some(timeline) = s.timeline() {
        report.merge(check_timeline(object, timeline, s));
    }

    // `AppInputPair::id` yields `app` or `app-input`, with app names shaped
    // `NNN.name` (suite-suffixed for CPU2017); anything else will not join
    // against the roster tables.
    let app_shaped = {
        let digits = r.app.bytes().take_while(u8::is_ascii_digit).count();
        digits >= 1 && r.app.as_bytes().get(digits) == Some(&b'.') && r.app.len() > digits + 1
    };
    if !app_shaped || !r.id.starts_with(r.app.as_str()) {
        report.push(Diagnostic::new(
            &codes::R012,
            Span::field(object, "id"),
            format!(
                "id {:?} / app {:?} do not follow the NNN.name[-input] convention",
                r.id, r.app
            ),
        ));
    }

    if let Some(system) = config {
        // projected = inst_b·1e9 / (IPC · clock · threads): the implied
        // thread count must come out a whole number.
        if r.ipc > 0.0 && r.projected_seconds > 0.0 && r.instructions_billions > 0.0 {
            let clock_hz = system.clock_ghz * 1e9;
            let implied = r.instructions_billions * 1e9 / (r.ipc * clock_hz * r.projected_seconds);
            let nearest = implied.round();
            if nearest < 1.0 || (implied - nearest).abs() > 0.02 * implied.max(1.0) {
                report.push(Diagnostic::new(
                    &codes::R013,
                    Span::field(object, "projected_seconds"),
                    format!(
                        "projection implies {implied:.3} threads — not a whole count \
                         consistent with IPC {:.4} at {:.2} GHz",
                        r.ipc, system.clock_ghz
                    ),
                ));
            }
        }
    }

    if loads > inst {
        report.push(Diagnostic::new(
            &codes::R014,
            Span::field(object, "loads"),
            format!("{loads} retired load uops exceed {inst} retired instructions"),
        ));
    }

    if loads as u128 + stores as u128 + branches as u128 > inst as u128 {
        report.push(Diagnostic::new(
            &codes::R015,
            Span::field(object, "mix"),
            format!(
                "loads {loads} + stores {stores} + branches {branches} exceed \
                 {inst} retired instructions"
            ),
        ));
    }

    report
}

/// Audits a sampled timeline against its run's final counters: intervals
/// must be contiguous with increasing op counts (`R011`) and their deltas
/// must telescope to the final counter values exactly (`R010`).
pub fn check_timeline(object: &str, timeline: &CounterTimeline, finals: &PerfSession) -> Report {
    let mut report = Report::new();
    let mut prev_end = None;
    for (i, interval) in timeline.intervals.iter().enumerate() {
        if interval.end_op <= interval.start_op {
            report.push(Diagnostic::new(
                &codes::R011,
                Span::field(object, "timeline"),
                format!(
                    "interval {i} spans [{}, {}) — empty or reversed",
                    interval.start_op, interval.end_op
                ),
            ));
        }
        if let Some(end) = prev_end {
            if interval.start_op != end {
                report.push(Diagnostic::new(
                    &codes::R011,
                    Span::field(object, "timeline"),
                    format!(
                        "interval {i} starts at op {} but the previous ended at {end}",
                        { interval.start_op }
                    ),
                ));
            }
        }
        prev_end = Some(interval.end_op);
    }
    let total = timeline.total();
    for event in Event::ALL {
        let summed: u128 = timeline
            .intervals
            .iter()
            .map(|iv| iv.deltas.count(event) as u128)
            .sum();
        debug_assert_eq!(summed, total.count(event) as u128);
        if summed != finals.count(event) as u128 {
            report.push(Diagnostic::new(
                &codes::R010,
                Span::field(object, "timeline"),
                format!(
                    "interval deltas for {event} sum to {summed}, final counter is {}",
                    finals.count(event)
                ),
            ));
        }
    }
    report
}

/// Audits every entry of a content-addressed results store without knowing
/// which pairs produced them: unreadable envelopes are `R020`, undecodable
/// payloads `R021`, and every decoded record gets the full [`check_record`]
/// pass. Returns the merged report and the number of entries visited.
pub fn audit_cache(store: &Store, config: Option<&SystemConfig>) -> (usize, Report) {
    let mut report = Report::new();
    let mut keys = store.keys();
    keys.sort();
    let visited = keys.len();
    for key in keys {
        let object = format!("cache:{key}");
        match store.get(key) {
            None => report.push(Diagnostic::new(
                &codes::R020,
                Span::object(&object),
                "envelope failed verification; entry evicted".to_string(),
            )),
            Some(payload) => match decode_record(&payload) {
                Err(e) => report.push(Diagnostic::new(
                    &codes::R021,
                    Span::object(&object),
                    format!("payload does not decode: {e}"),
                )),
                Ok(record) => {
                    report.merge(check_record(
                        &format!("cache:{}", record.id),
                        &record,
                        config,
                    ));
                }
            },
        }
    }
    (visited, report)
}

/// The pre-flight gate behind the binaries' `--lint` flag: every profile of
/// every roster (`P`-rules, including per-roster duplicate detection) plus
/// the system configuration (`C`-rules, checked once), in one merged report.
pub fn check_campaign(rosters: &[&[AppProfile]], config: &RunConfig) -> Report {
    let mut report = uarch_sim::lint::check_system(&config.system);
    for apps in rosters {
        report.merge(workload_synth::lint::check_roster(
            apps,
            Some(&config.system),
        ));
    }
    report
}

/// The scheduler-shape roster explored by [`check_race`]: `(workers, jobs,
/// failing job indices)`. Covers the serial path, the jobs-shorter-than-pool
/// path, a contended batch, and the panic/failure-list protocol.
const RACE_SHAPES: &[(usize, usize, &[usize])] =
    &[(4, 16, &[]), (1, 4, &[]), (4, 2, &[]), (3, 12, &[0, 5, 10])];

/// Explores the scheduler's job/slot/failure synchronization protocol for
/// concurrency bugs (`X`-rules): every shape in the model roster is replayed
/// through the deterministic `simrace` shuffle harness under `seeds`
/// schedules each (vector-clock happens-before audit per schedule, deadlock
/// detection when no thread can step), and one *live* instrumented
/// [`Scheduler`] batch is audited with the same checker. Returns the number
/// of schedules explored and the merged report; a clean protocol yields an
/// empty report for every seed.
pub fn check_race(seeds: u64) -> (usize, Report) {
    let seed_list: Vec<u64> = (0..seeds.max(1)).collect();
    let mut report = Report::new();
    let mut explored = 0usize;
    for &(workers, jobs, failing) in RACE_SHAPES {
        let suffix = if failing.is_empty() { "" } else { "-failing" };
        let object = format!("race/model/scheduler-{workers}x{jobs}{suffix}");
        let threads = simrace::scenarios::scheduler_model(workers, jobs, failing);
        report.merge(simrace::scenarios::check_model(
            &object, &threads, &seed_list,
        ));
        explored += seed_list.len();
    }
    // One real batch through the instrumented scheduler, audited by the
    // same vector-clock checker the models use. The guard serializes with
    // any concurrently running simrace tests and leaves the hooks disabled.
    {
        let _guard = simrace::test_support::enabled();
        let sched = simstore::Scheduler::new(4);
        let run = sched.run(32, |i| format!("job-{i}"), |i| i * i, |_| {});
        debug_assert!(run.failures.is_empty());
        let events = simrace::drain();
        report.merge(simrace::checker::check_events(
            "race/live/scheduler",
            &events,
        ));
        explored += 1;
    }
    (explored, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{encode_record, pair_key};
    use crate::characterize::characterize_pair;
    use uarch_sim::timeline::SamplerConfig;
    use workload_synth::cpu2017;
    use workload_synth::profile::InputSize;

    fn record() -> CharRecord {
        let app = cpu2017::app("505.mcf_r").unwrap();
        characterize_pair(&app.pairs(InputSize::Ref)[0], &RunConfig::quick()).unwrap()
    }

    fn haswell() -> SystemConfig {
        SystemConfig::haswell_e5_2650l_v3()
    }

    #[test]
    fn genuine_record_is_clean() {
        let r = record();
        let report = check_record(&r.id, &r, Some(&haswell()));
        assert!(report.is_empty(), "{}", report.to_table());
    }

    #[test]
    fn sampled_record_timeline_is_clean() {
        let app = cpu2017::app("541.leela_r").unwrap();
        let config = RunConfig::quick().with_sampler(SamplerConfig::every(5_000));
        let r = characterize_pair(&app.pairs(InputSize::Ref)[0], &config).unwrap();
        assert!(r.session.timeline().is_some());
        let report = check_record(&r.id, &r, Some(&haswell()));
        assert!(report.is_empty(), "{}", report.to_table());
    }

    #[test]
    fn tampered_counters_trip_partitions() {
        let mut r = record();
        let hits = r.session.count(Event::MemLoadUopsRetiredL1Hit);
        r.session.set(Event::MemLoadUopsRetiredL1Hit, hits + 7);
        let report = check_record(&r.id, &r, None);
        assert!(report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.code.code == "R001"));
    }

    #[test]
    fn edited_summary_field_trips_consistency() {
        let mut r = record();
        r.ipc *= 1.5;
        r.load_pct += 3.0;
        let codes_hit: Vec<&str> = check_record(&r.id, &r, None)
            .diagnostics()
            .iter()
            .map(|d| d.code.code)
            .collect();
        assert!(codes_hit.contains(&"R008"), "{codes_hit:?}");
        assert!(codes_hit.contains(&"R009"), "{codes_hit:?}");
    }

    #[test]
    fn impossible_ipc_needs_config() {
        let mut r = record();
        let cycles = r.session.count(Event::InstRetiredAny) / 40; // IPC = 40
        r.session.set(Event::CpuClkUnhaltedRefTsc, cycles.max(1));
        r.ipc = r.session.ipc();
        assert!(!check_record(&r.id, &r, None)
            .diagnostics()
            .iter()
            .any(|d| d.code.code == "R006"));
        assert!(check_record(&r.id, &r, Some(&haswell()))
            .diagnostics()
            .iter()
            .any(|d| d.code.code == "R006"));
    }

    #[test]
    fn odd_id_is_a_warning_not_an_error() {
        let mut r = record();
        r.id = "handmade".to_string();
        r.app = "mcf".to_string();
        let report = check_record(&r.id, &r, None);
        assert!(!report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code.code == "R012" && d.severity == simcheck::Severity::Warning));
    }

    #[test]
    fn broken_timeline_sums_are_caught() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let config = RunConfig::quick().with_sampler(SamplerConfig::every(5_000));
        let mut r = characterize_pair(&app.pairs(InputSize::Ref)[0], &config).unwrap();
        let mut timeline = r.session.take_timeline().unwrap();
        timeline.intervals[0]
            .deltas
            .set(Event::InstRetiredAny, 999_999_999);
        timeline.intervals[0].end_op += 1; // overlap with interval 1
        let report = check_timeline(&r.id, &timeline, &r.session);
        let codes_hit: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
        assert!(codes_hit.contains(&"R010"), "{codes_hit:?}");
        assert!(codes_hit.contains(&"R011"), "{codes_hit:?}");
    }

    #[test]
    fn cache_audit_flags_corruption_and_passes_good_entries() {
        let root = std::env::temp_dir().join(format!("workchar-lint-audit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Store::open(&root).unwrap();
        let config = RunConfig::quick();
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let good = characterize_pair(pair, &config).unwrap();
        store
            .put(pair_key(pair, &config), &encode_record(&good))
            .unwrap();
        let (n, report) = audit_cache(&store, Some(&config.system));
        assert_eq!(n, 1);
        assert!(report.is_empty(), "{}", report.to_table());

        // A payload that is not a CharRecord encoding: R021.
        store
            .put(simstore::hash::key_of("junk"), b"not a record")
            .unwrap();
        let (n, report) = audit_cache(&store, None);
        assert_eq!(n, 2);
        assert_eq!(report.count(simcheck::Severity::Error), 1);
        assert!(report.diagnostics().iter().any(|d| d.code.code == "R021"));

        // A tampered record re-encoded under its own key: counter rules fire.
        let mut bad = good.clone();
        bad.session.set(Event::MemLoadUopsRetiredL1Hit, 0);
        store
            .put(pair_key(pair, &config), &encode_record(&bad))
            .unwrap();
        let (_, report) = audit_cache(&store, Some(&config.system));
        assert!(report.diagnostics().iter().any(|d| d.code.code == "R001"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_gate_is_clean_for_shipped_rosters() {
        let config = RunConfig::default();
        let cpu17 = cpu2017::suite();
        let cpu06 = workload_synth::cpu2006::suite();
        let report = check_campaign(&[&cpu17, &cpu06], &config);
        assert!(!report.failed(true), "{}", report.to_table());
    }
}
