//! The paper's workload-characterization pipeline.
//!
//! This crate reproduces, end to end, the methodology of *A Workload
//! Characterization of the SPEC CPU2017 Benchmark Suite* (ISPASS 2018):
//!
//! 1. [`characterize`] runs every application–input pair on the simulated
//!    Haswell system and collects a perf-style counter record per pair.
//! 2. [`suitestats`] aggregates records into the paper's Table II overview.
//! 3. [`compare`] produces the CPU2006-vs-CPU2017 comparison rows of
//!    Tables III–VII.
//! 4. [`metrics`] extracts the 20 microarchitecture-independent
//!    characteristics of Table VIII from each record.
//! 5. [`redundancy`] standardizes, runs PCA, and exposes scores and factor
//!    loadings (Figs. 7–8).
//! 6. [`subset`] clusters the PC scores, finds the Pareto-knee cluster
//!    count, and picks the shortest-running representative per cluster
//!    (Figs. 9–10, Table X).
//! 7. [`experiments`] maps every paper table and figure to a regeneration
//!    function; the `reproduce` binary drives it.
//! 8. [`phase`] implements the paper's future-work proposal: windowed phase
//!    detection and SimPoint-style simulation-point selection.
//! 9. [`ablation`] quantifies the reproduction's own design choices
//!    (linkage, subsetter, predictor, replacement policy, prefetcher).
//! 10. [`cache`] memoizes characterization results in a content-addressed
//!     `simstore` store, so repeated campaigns replay from disk; the
//!     parallel runners in [`characterize`] are cache-first and
//!     panic-isolated (one broken profile no longer aborts a campaign).
//! 11. [`lint`] statically audits produced artifacts without re-running
//!     anything: counter identities on records and cached entries, timeline
//!     telescoping, and the campaign pre-flight gate behind the binaries'
//!     `--lint` flag (`simcheck` rules `R001`–`R021`).
//! 12. [`simpoints`] drives roster-wide `simpoint` campaigns (SimPoint-style
//!     representative-interval simulation) behind the binaries' `--simpoint`
//!     flag, persisting speedup-vs-error records under `results/simpoints/`;
//!     the `simpoint-report` binary renders and gates them.
//!
//! # Example
//!
//! ```no_run
//! use workchar::characterize::{characterize_pair, RunConfig};
//! use workload_synth::cpu2017;
//! use workload_synth::profile::InputSize;
//!
//! let config = RunConfig::default();
//! let app = cpu2017::app("505.mcf_r").expect("known app");
//! let pair = &app.pairs(InputSize::Ref)[0];
//! let record = characterize_pair(pair, &config)?;
//! println!("{} IPC = {:.3}", record.id, record.ipc);
//! # Ok::<(), workchar::error::Error>(())
//! ```

pub mod ablation;
pub mod cache;
pub mod characterize;
pub mod cli;
pub mod compare;
pub mod dataset;
pub mod error;
pub mod experiments;
pub mod lint;
pub mod metrics;
pub mod observe;
pub mod phase;
pub mod redundancy;
pub mod sensitivity;
pub mod simpoints;
pub mod subset;
pub mod suitestats;
pub mod telemetry;
