//! Design-space sensitivity studies over the characterized suite.
//!
//! The paper positions CPU2017 as the workload set for "simulation-based
//! design and optimization research for next-generation processors [and]
//! memory subsystems". This module runs that use case end to end: sweep one
//! architectural parameter, replay a set of applications at each point, and
//! tabulate how the suite responds — the what-if analysis a
//! processor architect would perform with the reproduced infrastructure.
//! Sweeps are trace-driven: each pair's micro-op stream is generated once on
//! the baseline machine and replayed unchanged on every variant.

use simreport::figure::{Figure, Kind, Series};
use simreport::table::{num, Table};
use uarch_sim::config::SystemConfig;
use workload_synth::profile::{AppProfile, InputSize};

use uarch_sim::engine::Engine;
use uarch_sim::exec::{from_iter, ExecPlan};

use crate::characterize::{prepared_run, CharRecord, RunConfig};

/// One swept configuration point with its suite-average outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Label of the configuration (e.g. `"15 MiB"`).
    pub label: String,
    /// Mean IPC across the swept applications.
    pub mean_ipc: f64,
    /// Mean local L2 miss rate (percent).
    pub mean_l2_miss_pct: f64,
    /// Mean local L3 miss rate (percent).
    pub mean_l3_miss_pct: f64,
    /// Mean projected execution seconds.
    pub mean_seconds: f64,
}

/// Result of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// What was swept (for titles).
    pub parameter: &'static str,
    /// The per-configuration outcomes, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!("Sensitivity: suite response to {}", self.parameter),
            &[
                self.parameter,
                "Mean IPC",
                "L2 miss %",
                "L3 miss %",
                "Mean time (s)",
            ],
        );
        t.numeric();
        for p in &self.points {
            t.row(vec![
                p.label.clone(),
                num(p.mean_ipc, 3),
                num(p.mean_l2_miss_pct, 2),
                num(p.mean_l3_miss_pct, 2),
                num(p.mean_seconds, 1),
            ]);
        }
        t
    }

    /// Renders the sweep's IPC response as a line figure.
    pub fn figure(&self) -> Figure {
        let mut f = Figure::new(&format!("Suite mean IPC vs {}", self.parameter), Kind::Line);
        let labels: Vec<&str> = self.points.iter().map(|p| p.label.as_str()).collect();
        let x: Vec<f64> = (0..self.points.len()).map(|i| i as f64).collect();
        let y: Vec<f64> = self.points.iter().map(|p| p.mean_ipc).collect();
        f.push(Series::points("mean IPC", &labels, &x, &y));
        f
    }
}

/// Rebuilds a sweep point from already-characterized baseline records
/// instead of replaying traces. Only valid for a point whose system *is*
/// the baseline system: [`crate::characterize::characterize_pair`] and the
/// replay loop below run the identical trace, warmup, and engine, so their
/// sessions — and therefore these means — coincide exactly. Returns `None`
/// unless every swept pair has a `ref` record in `records`.
fn baseline_point(
    label: String,
    apps: &[AppProfile],
    records: &[CharRecord],
) -> Option<SweepPoint> {
    let (mut ipc, mut m2, mut m3, mut secs) = (0.0, 0.0, 0.0, 0.0);
    let mut n = 0usize;
    for app in apps {
        for pair in app.pairs(InputSize::Ref) {
            let id = pair.id();
            let r = records
                .iter()
                .find(|r| r.size == InputSize::Ref && r.id == id)?;
            ipc += r.ipc;
            m2 += r.l2_miss_pct;
            m3 += r.l3_miss_pct;
            secs += r.projected_seconds;
            n += 1;
        }
    }
    let n = n.max(1) as f64;
    Some(SweepPoint {
        label,
        mean_ipc: ipc / n,
        mean_l2_miss_pct: m2 / n,
        mean_l3_miss_pct: m3 / n,
        mean_seconds: secs / n,
    })
}

fn sweep_over(
    parameter: &'static str,
    apps: &[AppProfile],
    base: &RunConfig,
    configs: Vec<(String, SystemConfig)>,
    baseline: Option<&[CharRecord]>,
) -> Sweep {
    // Trace-driven methodology: the workload adapts its working sets to
    // whatever machine it is generated for (that is how miss-rate targets
    // are hit), so a sweep must generate each trace ONCE on the baseline
    // system and replay the identical micro-op stream on every variant.
    struct PreparedTrace {
        ops: Vec<uarch_sim::microop::MicroOp>,
        hints: uarch_sim::engine::WorkloadHints,
        instructions_billions: f64,
        threads: u32,
    }
    let mut traces = Vec::new();
    for app in apps {
        for pair in app.pairs(InputSize::Ref) {
            let (generator, hints) = prepared_run(&pair, base).expect("curated profiles are valid");
            traces.push(PreparedTrace {
                ops: generator.collect(),
                hints,
                instructions_billions: pair.input.behavior.instructions_billions,
                threads: pair.input.behavior.threads,
            });
        }
    }

    let mut points = Vec::with_capacity(configs.len());
    for (label, system) in configs {
        if system == base.system {
            // The unmodified point: a characterization campaign (possibly
            // cache-served) already measured it; reuse those records.
            if let Some(point) =
                baseline.and_then(|records| baseline_point(label.clone(), apps, records))
            {
                points.push(point);
                continue;
            }
        }
        let (mut ipc, mut m2, mut m3, mut secs) = (0.0, 0.0, 0.0, 0.0);
        for t in &traces {
            let mut engine = Engine::new(&system);
            let warm = t.ops.len() as u64 / 3;
            let session = engine.execute(
                from_iter(t.ops.iter().copied()),
                &ExecPlan::new().hints(t.hints).warmup(warm),
            );
            ipc += session.ipc();
            m2 += session.l2_miss_rate() * 100.0;
            m3 += session.l3_miss_rate() * 100.0;
            if session.ipc() > 0.0 {
                // Same operation order as `characterize_pair`'s
                // projected-seconds formula, so a baseline point served from
                // records is bit-identical to one replayed here.
                let clock_hz = system.clock_ghz * 1e9;
                secs += t.instructions_billions * 1e9
                    / (session.ipc() * clock_hz * t.threads.max(1) as f64);
            }
        }
        let n = traces.len().max(1) as f64;
        points.push(SweepPoint {
            label,
            mean_ipc: ipc / n,
            mean_l2_miss_pct: m2 / n,
            mean_l3_miss_pct: m3 / n,
            mean_seconds: secs / n,
        });
    }
    Sweep { parameter, points }
}

/// Sweeps main-memory latency over `cycle_points` — the strongest lever on
/// the memory-bound applications the paper highlights.
pub fn memory_latency_sweep(apps: &[AppProfile], base: &RunConfig, cycle_points: &[u64]) -> Sweep {
    memory_latency_sweep_with(apps, base, cycle_points, None)
}

/// [`memory_latency_sweep`] reusing `baseline` records for any point whose
/// system equals the baseline system.
pub fn memory_latency_sweep_with(
    apps: &[AppProfile],
    base: &RunConfig,
    cycle_points: &[u64],
    baseline: Option<&[CharRecord]>,
) -> Sweep {
    let configs = cycle_points
        .iter()
        .map(|&cycles| {
            let mut system = base.system.clone();
            system.memory_latency = cycles;
            (format!("{cycles} cyc"), system)
        })
        .collect();
    sweep_over("DRAM latency", apps, base, configs, baseline)
}

/// Sweeps the core issue width over `width_points` — compute-bound
/// applications respond, memory-bound ones barely move (the classic
/// balance-of-machine picture).
pub fn issue_width_sweep(apps: &[AppProfile], base: &RunConfig, width_points: &[usize]) -> Sweep {
    issue_width_sweep_with(apps, base, width_points, None)
}

/// [`issue_width_sweep`] reusing `baseline` records for the base point.
pub fn issue_width_sweep_with(
    apps: &[AppProfile],
    base: &RunConfig,
    width_points: &[usize],
    baseline: Option<&[CharRecord]>,
) -> Sweep {
    let configs = width_points
        .iter()
        .map(|&width| {
            let mut system = base.system.clone();
            system.issue_width = width;
            (format!("{width}-wide"), system)
        })
        .collect();
    sweep_over("issue width", apps, base, configs, baseline)
}

/// Sweeps the shared L3 capacity over `mib_points`.
///
/// Note: at the default trace scale the per-application L3 working sets are
/// far smaller than any realistic L3 point, so this sweep is flat unless
/// `base.scale` is raised substantially — it exists for full-fidelity runs
/// and is not featured in the `extensions` binary's default report.
pub fn l3_capacity_sweep(apps: &[AppProfile], base: &RunConfig, mib_points: &[usize]) -> Sweep {
    l3_capacity_sweep_with(apps, base, mib_points, None)
}

/// [`l3_capacity_sweep`] reusing `baseline` records for the base point.
pub fn l3_capacity_sweep_with(
    apps: &[AppProfile],
    base: &RunConfig,
    mib_points: &[usize],
    baseline: Option<&[CharRecord]>,
) -> Sweep {
    let configs = mib_points
        .iter()
        .map(|&mib| {
            (
                format!("{mib} MiB"),
                base.system.clone().with_l3_size(mib * 1024 * 1024),
            )
        })
        .collect();
    sweep_over("L3 capacity", apps, base, configs, baseline)
}

/// Sweeps the per-core L2 capacity over `kib_points`.
pub fn l2_capacity_sweep(apps: &[AppProfile], base: &RunConfig, kib_points: &[usize]) -> Sweep {
    l2_capacity_sweep_with(apps, base, kib_points, None)
}

/// [`l2_capacity_sweep`] reusing `baseline` records for the base point.
pub fn l2_capacity_sweep_with(
    apps: &[AppProfile],
    base: &RunConfig,
    kib_points: &[usize],
    baseline: Option<&[CharRecord]>,
) -> Sweep {
    let configs = kib_points
        .iter()
        .map(|&kib| {
            (
                format!("{kib} KiB"),
                base.system.clone().with_l2_size(kib * 1024),
            )
        })
        .collect();
    sweep_over("L2 capacity", apps, base, configs, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_synth::cpu2017;

    fn memory_bound_apps() -> Vec<AppProfile> {
        vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("549.fotonik3d_r").unwrap(),
        ]
    }

    #[test]
    fn larger_l3_never_hurts_ipc() {
        let sweep = l3_capacity_sweep(&memory_bound_apps(), &RunConfig::quick(), &[4, 30, 120]);
        assert_eq!(sweep.points.len(), 3);
        let ipc: Vec<f64> = sweep.points.iter().map(|p| p.mean_ipc).collect();
        assert!(
            ipc.windows(2).all(|w| w[1] >= w[0] - 0.02),
            "IPC must not degrade with more L3: {ipc:?}"
        );
    }

    #[test]
    fn slower_memory_hurts_memory_bound_apps() {
        let sweep =
            memory_latency_sweep(&memory_bound_apps(), &RunConfig::quick(), &[100, 220, 500]);
        let ipc: Vec<f64> = sweep.points.iter().map(|p| p.mean_ipc).collect();
        assert!(
            ipc.windows(2).all(|w| w[1] < w[0]),
            "IPC must fall as DRAM slows: {ipc:?}"
        );
        assert!(ipc[0] > ipc[2] * 1.08, "response must be material: {ipc:?}");
    }

    #[test]
    fn wider_issue_helps_compute_bound_apps() {
        let apps = vec![cpu2017::app("525.x264_r").unwrap()];
        let sweep = issue_width_sweep(&apps, &RunConfig::quick(), &[1, 2, 4]);
        let ipc: Vec<f64> = sweep.points.iter().map(|p| p.mean_ipc).collect();
        assert!(ipc[2] > ipc[0] * 1.5, "x264 must scale with width: {ipc:?}");
    }

    #[test]
    fn larger_l2_reduces_l2_miss_rate() {
        let sweep = l2_capacity_sweep(&memory_bound_apps(), &RunConfig::quick(), &[128, 256, 1024]);
        let m2: Vec<f64> = sweep.points.iter().map(|p| p.mean_l2_miss_pct).collect();
        assert!(
            m2.first().unwrap() >= m2.last().unwrap(),
            "bigger L2 must lower the local L2 miss rate: {m2:?}"
        );
    }

    #[test]
    fn baseline_records_reproduce_the_base_point_exactly() {
        let apps = memory_bound_apps();
        let base = RunConfig::quick();
        let latency = base.system.memory_latency;
        let replayed = memory_latency_sweep(&apps, &base, &[latency, 500]);
        let records =
            crate::characterize::characterize_suite(&apps, InputSize::Ref, &base).unwrap();
        let served = memory_latency_sweep_with(&apps, &base, &[latency, 500], Some(&records));
        assert_eq!(
            replayed, served,
            "record-served base point must match a replay"
        );
    }

    #[test]
    fn incomplete_baseline_falls_back_to_replay() {
        let apps = memory_bound_apps();
        let base = RunConfig::quick();
        let latency = base.system.memory_latency;
        // Records covering only one of the two apps cannot serve the point.
        let partial =
            crate::characterize::characterize_suite(&apps[..1], InputSize::Ref, &base).unwrap();
        let replayed = memory_latency_sweep(&apps, &base, &[latency]);
        let served = memory_latency_sweep_with(&apps, &base, &[latency], Some(&partial));
        assert_eq!(replayed, served);
    }

    #[test]
    fn rendering_works() {
        let sweep = l3_capacity_sweep(&memory_bound_apps(), &RunConfig::quick(), &[8, 30]);
        let table = sweep.table();
        assert_eq!(table.n_rows(), 2);
        assert!(table.render_ascii().contains("30 MiB"));
        let figure = sweep.figure();
        assert_eq!(figure.series()[0].len(), 2);
        assert!(!figure.render_svg(400, 200).is_empty());
    }
}
