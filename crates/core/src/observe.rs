//! Binary-side observability helpers: timeline artifacts and run summaries.
//!
//! When a campaign runs with interval sampling (`--timeline`), every
//! [`CharRecord`]'s session carries a
//! [`uarch_sim::timeline::CounterTimeline`]. This module turns those
//! timelines into on-disk artifacts — one CSV and one SVG sparkline per
//! pair under `<results>/timelines/` — and is shared by the `reproduce` and
//! `extensions` binaries. It also hosts [`PipelineSpan`], the combined
//! perfmon + simtrace phase guard both binaries wrap their stages in.

use std::path::Path;

use simreport::sparkline::sparkline_svg;
use uarch_sim::timeline::IntervalSample;

use crate::characterize::CharRecord;
use crate::error::Result;

/// One top-level pipeline phase in *all three* span layers: a
/// [`perfmon::Span`] (JSONL event + stderr stage table), a [`simtrace`]
/// span (the causal trace), and a [`simprof`] frame (so profile samples
/// taken during the phase fold under its name), opened and closed from
/// the same scope so the reports always describe the same window. Fields
/// recorded here land in the two span layers (frames carry no fields).
/// Any side being disabled degrades to the others alone.
#[derive(Debug)]
pub struct PipelineSpan {
    perf: perfmon::Span,
    trace: simtrace::SpanGuard,
    _frame: simprof::FrameGuard,
}

impl PipelineSpan {
    /// Opens the phase `name` in every layer; the trace span and profile
    /// frame nest under whatever is current on this thread (the binary's
    /// run root).
    pub fn open(recorder: &perfmon::Recorder, name: &str) -> PipelineSpan {
        PipelineSpan {
            perf: recorder.span(name),
            trace: simtrace::span(name),
            _frame: simprof::frame(name),
        }
    }

    /// Attaches a field to both layers.
    pub fn record(&mut self, key: &str, value: impl Into<perfmon::FieldValue>) {
        let value = value.into();
        self.trace.arg(
            key,
            match &value {
                perfmon::FieldValue::U64(v) => simtrace::ArgValue::U64(*v),
                perfmon::FieldValue::F64(v) => simtrace::ArgValue::F64(*v),
                perfmon::FieldValue::Str(s) => simtrace::ArgValue::Str(s.clone()),
                perfmon::FieldValue::Bool(b) => simtrace::ArgValue::Bool(*b),
            },
        );
        self.perf.record(key, value);
    }

    /// Finishes both spans now (drop does the same).
    pub fn finish(self) {}
}

/// Pair ids as written turn into file names; everything outside
/// `[A-Za-z0-9._-]` is mapped to `_` so ids like `505.mcf_r/ref` stay
/// filesystem-safe.
fn artifact_stem(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes `<stem>.csv` and `<stem>.svg` under `dir` for every record whose
/// session carries a timeline; records without one are skipped. Returns the
/// number of pairs written.
///
/// # Errors
///
/// [`crate::error::Error::Io`] when the directory cannot be created or a
/// file cannot be written.
pub fn write_timeline_artifacts(records: &[CharRecord], dir: &Path) -> Result<usize> {
    let with_timelines: Vec<&CharRecord> = records
        .iter()
        .filter(|r| r.session.timeline().is_some())
        .collect();
    if with_timelines.is_empty() {
        return Ok(0);
    }
    std::fs::create_dir_all(dir)?;
    for record in &with_timelines {
        let timeline = record.session.timeline().expect("filtered above");
        let stem = artifact_stem(&record.id);
        std::fs::write(dir.join(format!("{stem}.csv")), timeline.csv())?;
        let series: Vec<(&str, Vec<f64>)> = vec![
            ("ipc", timeline.series(IntervalSample::ipc)),
            ("l1 mpki", timeline.series(IntervalSample::l1_mpki)),
            ("l2 mpki", timeline.series(IntervalSample::l2_mpki)),
            ("l3 mpki", timeline.series(IntervalSample::l3_mpki)),
            (
                "misp rate",
                timeline.series(IntervalSample::mispredict_rate),
            ),
        ];
        let svg = sparkline_svg(&record.id, &series, 460, 96);
        std::fs::write(dir.join(format!("{stem}.svg")), svg)?;
    }
    Ok(with_timelines.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_pair, RunConfig};
    use uarch_sim::timeline::SamplerConfig;
    use workload_synth::cpu2017;
    use workload_synth::profile::InputSize;

    #[test]
    fn stems_are_filesystem_safe() {
        assert_eq!(artifact_stem("505.mcf_r"), "505.mcf_r");
        assert_eq!(artifact_stem("a/b c:d"), "a_b_c_d");
    }

    #[test]
    fn writes_csv_and_svg_per_sampled_record() {
        let dir = std::env::temp_dir().join(format!("workchar-timelines-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let config = RunConfig::quick().with_sampler(SamplerConfig::every(10_000));
        let sampled = characterize_pair(pair, &config).unwrap();
        let plain = characterize_pair(pair, &RunConfig::quick()).unwrap();

        let n = write_timeline_artifacts(&[sampled, plain], &dir).unwrap();
        assert_eq!(n, 1, "only the sampled record has a timeline");
        let csv = std::fs::read_to_string(dir.join("505.mcf_r.csv")).unwrap();
        assert!(csv.starts_with("interval,start_op,end_op"));
        assert!(csv.lines().count() > 2);
        let svg = std::fs::read_to_string(dir.join("505.mcf_r.svg")).unwrap();
        assert!(svg.contains("<polyline"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_timelines_writes_nothing() {
        let dir =
            std::env::temp_dir().join(format!("workchar-timelines-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = cpu2017::app("541.leela_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let plain = characterize_pair(pair, &RunConfig::quick()).unwrap();
        let n = write_timeline_artifacts(&[plain], &dir).unwrap();
        assert_eq!(n, 0);
        assert!(!dir.exists(), "directory must not be created for nothing");
    }
}
