//! Campaign dataset: every characterization record the experiments need.

use workload_synth::profile::{AppProfile, InputSize, Suite};
use workload_synth::{cpu2006, cpu2017};

use crate::cache::CacheContext;
use crate::characterize::{characterize_suite_with, CharRecord, RunConfig};
use crate::error::Result;

/// All records of one characterization campaign.
///
/// Collect once, then regenerate any number of tables and figures from it —
/// the analogue of the paper's "run everything under perf, then analyze".
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The configuration the campaign ran with.
    pub config: RunConfig,
    /// CPU2017 records for all input sizes (194 pairs for the full roster).
    pub cpu17: Vec<CharRecord>,
    /// CPU2006 `ref` records (29 for the full roster).
    pub cpu06: Vec<CharRecord>,
}

impl Dataset {
    /// Characterizes the full CPU2017 (all sizes) and CPU2006 (`ref`)
    /// rosters.
    ///
    /// # Errors
    ///
    /// [`crate::error::Error::Characterization`] when any pair fails.
    pub fn collect(config: RunConfig) -> Result<Self> {
        Dataset::collect_apps(config, &cpu2017::suite(), &cpu2006::suite())
    }

    /// [`Dataset::collect`] with an optional result cache: pairs already in
    /// the store are replayed instead of re-simulated.
    ///
    /// # Errors
    ///
    /// [`crate::error::Error::Characterization`] when any pair fails.
    pub fn collect_with(config: RunConfig, cache: Option<&CacheContext>) -> Result<Self> {
        Dataset::collect_apps_with(config, &cpu2017::suite(), &cpu2006::suite(), cache)
    }

    /// Characterizes explicit app lists (used by tests and scaled-down
    /// demos); CPU2017 apps run at every size they define, CPU2006 at `ref`.
    ///
    /// # Errors
    ///
    /// [`crate::error::Error::Characterization`] when any pair fails.
    pub fn collect_apps(
        config: RunConfig,
        cpu17_apps: &[AppProfile],
        cpu06_apps: &[AppProfile],
    ) -> Result<Self> {
        Dataset::collect_apps_with(config, cpu17_apps, cpu06_apps, None)
    }

    /// [`Dataset::collect_apps`] with an optional result cache.
    ///
    /// # Errors
    ///
    /// [`crate::error::Error::Characterization`] when any pair fails.
    pub fn collect_apps_with(
        config: RunConfig,
        cpu17_apps: &[AppProfile],
        cpu06_apps: &[AppProfile],
        cache: Option<&CacheContext>,
    ) -> Result<Self> {
        let mut cpu17 = Vec::new();
        for size in InputSize::ALL {
            cpu17.extend(characterize_suite_with(cpu17_apps, size, &config, cache)?);
        }
        let cpu06 = characterize_suite_with(cpu06_apps, InputSize::Ref, &config, cache)?;
        Ok(Dataset {
            config,
            cpu17,
            cpu06,
        })
    }

    /// A small fast dataset for tests: eight representative CPU2017
    /// applications and four CPU2006 applications at quick scale.
    pub fn demo() -> Self {
        let names17 = [
            "505.mcf_r",
            "519.lbm_r",
            "525.x264_r",
            "541.leela_r",
            "549.fotonik3d_r",
            "603.bwaves_s",
            "607.cactuBSSN_s",
            "657.xz_s",
        ];
        let cpu17: Vec<AppProfile> = names17
            .iter()
            .map(|n| cpu2017::app(n).expect("demo app exists"))
            .collect();
        let cpu06: Vec<AppProfile> = cpu2006::suite()
            .into_iter()
            .filter(|a| ["429.mcf", "470.lbm", "456.hmmer", "433.milc"].contains(&a.name.as_str()))
            .collect();
        Dataset::collect_apps(RunConfig::quick(), &cpu17, &cpu06)
            .expect("demo roster characterizes cleanly")
    }

    /// CPU2017 records at one input size.
    pub fn cpu17_at(&self, size: InputSize) -> Vec<&CharRecord> {
        self.cpu17.iter().filter(|r| r.size == size).collect()
    }

    /// CPU2017 `ref` records of the two `rate` mini-suites (Fig. 9a scope).
    pub fn rate_ref(&self) -> Vec<&CharRecord> {
        self.cpu17
            .iter()
            .filter(|r| r.size == InputSize::Ref && !r.suite.is_speed())
            .collect()
    }

    /// CPU2017 `ref` records of the two `speed` mini-suites (Fig. 9b scope).
    pub fn speed_ref(&self) -> Vec<&CharRecord> {
        self.cpu17
            .iter()
            .filter(|r| r.size == InputSize::Ref && r.suite.is_speed())
            .collect()
    }

    /// CPU2017 `ref` records of one mini-suite, ordered by application name.
    pub fn mini_suite_ref(&self, suite: Suite) -> Vec<&CharRecord> {
        let mut v: Vec<&CharRecord> = self
            .cpu17
            .iter()
            .filter(|r| r.size == InputSize::Ref && r.suite == suite)
            .collect();
        v.sort_by(|a, b| a.id.cmp(&b.id));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_dataset_shape() {
        let d = Dataset::demo();
        // 8 apps; x264 has 3/2/3 inputs, gcc not included; bwaves_s 2/2/2,
        // xz_s 5/2/2; others single.
        assert!(!d.cpu17.is_empty());
        assert_eq!(d.cpu06.len(), 4);
        let ref_records = d.cpu17_at(InputSize::Ref);
        assert!(ref_records.len() >= 8);
        // Accessors partition ref records.
        assert_eq!(d.rate_ref().len() + d.speed_ref().len(), ref_records.len());
    }

    #[test]
    fn mini_suite_ref_sorted() {
        let d = Dataset::demo();
        let rate_int = d.mini_suite_ref(Suite::RateInt);
        assert!(!rate_int.is_empty());
        assert!(rate_int.windows(2).all(|w| w[0].id <= w[1].id));
        assert!(rate_int.iter().all(|r| r.suite == Suite::RateInt));
    }
}
