//! The experiment registry: one entry per table and figure of the paper.
//!
//! Every [`ExperimentId`] regenerates the corresponding artifact from a
//! collected [`Dataset`]; the `reproduce` binary drives all twenty and
//! writes the renderings under `results/`.

use std::fmt;

use simreport::figure::{Figure, Kind, Series};
use simreport::table::{num, Table};
use stat_analysis::cluster::Linkage;
use stat_analysis::summary;
use uarch_sim::counters::Event;
use workload_synth::profile::{InputSize, Suite};

use crate::characterize::CharRecord;
use crate::compare::{compare_rows, Metric};
use crate::dataset::Dataset;
use crate::error::Result;
use crate::metrics::CHARACTERISTICS;
use crate::redundancy::RedundancyAnalysis;
use crate::subset::SubsetAnalysis;
use crate::suitestats::table_two_rows;

/// Identifier of one paper table or figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are self-describing table/figure ids
pub enum ExperimentId {
    Table1,
    Table2,
    Table3,
    Table4,
    Table5,
    Table6,
    Table7,
    Table8,
    Table9,
    Table10,
    Fig1,
    Fig2,
    Fig3,
    Fig4,
    Fig5,
    Fig6,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub const ALL: [ExperimentId; 20] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Fig1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
    ];

    /// Short machine-friendly name, e.g. `"table2"` / `"fig10"`.
    pub fn slug(self) -> &'static str {
        match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Table4 => "table4",
            ExperimentId::Table5 => "table5",
            ExperimentId::Table6 => "table6",
            ExperimentId::Table7 => "table7",
            ExperimentId::Table8 => "table8",
            ExperimentId::Table9 => "table9",
            ExperimentId::Table10 => "table10",
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
        }
    }

    /// Parses a slug back to an id.
    pub fn from_slug(slug: &str) -> Option<ExperimentId> {
        ExperimentId::ALL
            .iter()
            .copied()
            .find(|id| id.slug() == slug)
    }

    /// Human-readable description of the paper artifact.
    pub fn description(self) -> &'static str {
        match self {
            ExperimentId::Table1 => "Experimental system configuration",
            ExperimentId::Table2 => {
                "Average performance characteristics per mini-suite and input size"
            }
            ExperimentId::Table3 => "IPC comparison of CPU2017 and CPU2006",
            ExperimentId::Table4 => "Instruction-mix comparison of CPU2017 and CPU2006",
            ExperimentId::Table5 => "RSS and VSZ comparison of CPU2017 and CPU2006",
            ExperimentId::Table6 => "Cache miss-rate comparison of CPU2017 and CPU2006",
            ExperimentId::Table7 => "Branch-predictor accuracy comparison of CPU2017 and CPU2006",
            ExperimentId::Table8 => "The 20 PCA characteristics",
            ExperimentId::Table9 => "Validating PC clustering (bwaves_s inputs vs cactuBSSN_s)",
            ExperimentId::Table10 => "Suggested representative subset and time savings",
            ExperimentId::Fig1 => "IPC per application (rate, speed)",
            ExperimentId::Fig2 => "Memory micro-operation breakdown per application",
            ExperimentId::Fig3 => "Branch characteristics per application",
            ExperimentId::Fig4 => "Memory footprint (RSS, VSZ) per application",
            ExperimentId::Fig5 => "L1/L2/L3 cache miss rates per application",
            ExperimentId::Fig6 => "Branch mispredict rates per application",
            ExperimentId::Fig7 => "Scatter of principal-component scores",
            ExperimentId::Fig8 => "Factor loadings of the 20 characteristics",
            ExperimentId::Fig9 => "Dendrograms of the rate and speed mini-suites",
            ExperimentId::Fig10 => "Pareto-optimal cluster counts (SSE vs execution time)",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.slug(), self.description())
    }
}

/// The regenerated artifact of one experiment.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Which experiment produced it.
    pub id: ExperimentId,
    /// Zero or more tables.
    pub tables: Vec<Table>,
    /// Zero or more figures.
    pub figures: Vec<Figure>,
    /// Free-form text blocks (dendrograms, chosen-k notes, …).
    pub texts: Vec<(String, String)>,
}

impl Artifact {
    fn new(id: ExperimentId) -> Self {
        Artifact {
            id,
            tables: Vec::new(),
            figures: Vec::new(),
            texts: Vec::new(),
        }
    }

    /// Renders everything as terminal-ready text.
    pub fn render(&self) -> String {
        let mut out = format!("==== {} ====\n", self.id);
        for t in &self.tables {
            out.push_str(&t.render_ascii());
            out.push('\n');
        }
        for f in &self.figures {
            out.push_str(&f.render_ascii(100));
            out.push('\n');
        }
        for (title, body) in &self.texts {
            out.push_str(&format!("-- {title} --\n{body}\n"));
        }
        out
    }

    /// Renders the CSV payload (tables then figures).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.render_csv());
            out.push('\n');
        }
        for f in &self.figures {
            out.push_str(&f.render_csv());
            out.push('\n');
        }
        out
    }
}

/// Runs one experiment against a dataset.
///
/// # Errors
///
/// Propagates [`crate::error::Error`] from the underlying analyses. (The
/// current experiments degrade to explanatory text on small datasets rather
/// than failing, but the contract allows future experiments to fail.)
pub fn run(id: ExperimentId, data: &Dataset) -> Result<Artifact> {
    Ok(match id {
        ExperimentId::Table1 => table1(data),
        ExperimentId::Table2 => table2(data),
        ExperimentId::Table3 => comparison_table(
            data,
            id,
            "Table III analogue: IPC comparison",
            &[("IPC", &|r: &CharRecord| r.ipc)],
        ),
        ExperimentId::Table4 => comparison_table(
            data,
            id,
            "Table IV analogue: instruction-mix comparison",
            &[
                ("% Loads", &|r: &CharRecord| r.load_pct),
                ("% Stores", &|r: &CharRecord| r.store_pct),
                ("% Branches", &|r: &CharRecord| r.branch_pct),
            ],
        ),
        ExperimentId::Table5 => comparison_table(
            data,
            id,
            "Table V analogue: RSS and VSZ comparison (GiB)",
            &[
                ("RSS (GiB)", &|r: &CharRecord| r.rss_gib),
                ("VSZ (GiB)", &|r: &CharRecord| r.vsz_gib),
            ],
        ),
        ExperimentId::Table6 => comparison_table(
            data,
            id,
            "Table VI analogue: cache miss-rate comparison (%)",
            &[
                ("L1 Miss", &|r: &CharRecord| r.l1_miss_pct),
                ("L2 Miss", &|r: &CharRecord| r.l2_miss_pct),
                ("L3 Miss", &|r: &CharRecord| r.l3_miss_pct),
            ],
        ),
        ExperimentId::Table7 => comparison_table(
            data,
            id,
            "Table VII analogue: branch mispredict comparison (%)",
            &[("Mispredict", &|r: &CharRecord| r.mispredict_pct)],
        ),
        ExperimentId::Table8 => table8(),
        ExperimentId::Table9 => table9(data),
        ExperimentId::Table10 => table10(data),
        ExperimentId::Fig1 => per_app_figure(data, id, "IPC", &|r| r.ipc),
        ExperimentId::Fig2 => fig2(data),
        ExperimentId::Fig3 => fig3(data),
        ExperimentId::Fig4 => fig4(data),
        ExperimentId::Fig5 => fig5(data),
        ExperimentId::Fig6 => per_app_figure(data, id, "Branch mispredict rate (%)", &|r| {
            r.mispredict_pct
        }),
        ExperimentId::Fig7 => fig7(data),
        ExperimentId::Fig8 => fig8(data),
        ExperimentId::Fig9 => fig9(data),
        ExperimentId::Fig10 => fig10(data),
    })
}

/// Runs every experiment.
///
/// # Errors
///
/// Propagates the first per-experiment [`crate::error::Error`].
pub fn run_all(data: &Dataset) -> Result<Vec<Artifact>> {
    ExperimentId::ALL.iter().map(|&id| run(id, data)).collect()
}

fn table1(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Table1);
    let c = &data.config.system;
    let mut t = Table::new(
        "Table I analogue: simulated system configuration",
        &["Component", "Configuration"],
    );
    let kib = |b: usize| format!("{} KiB", b / 1024);
    t.row(vec!["Processor model".into(), c.name.clone()])
        .row(vec![
            "Clock".into(),
            format!("{:.1} GHz (Turbo disabled)", c.clock_ghz),
        ])
        .row(vec![
            "L1 I-cache".into(),
            format!("{}-way {} (per core)", c.l1i.ways, kib(c.l1i.size_bytes)),
        ])
        .row(vec![
            "L1 D-cache".into(),
            format!("{}-way {} (per core)", c.l1d.ways, kib(c.l1d.size_bytes)),
        ])
        .row(vec![
            "L2 cache".into(),
            format!("{}-way {} (per core)", c.l2.ways, kib(c.l2.size_bytes)),
        ])
        .row(vec![
            "L3 cache".into(),
            format!("{} MiB shared", c.l3.size_bytes / (1024 * 1024)),
        ])
        .row(vec!["Line size".into(), format!("{} B", c.l1d.line_bytes)])
        .row(vec![
            "Issue width".into(),
            format!("{} micro-ops/cycle", c.issue_width),
        ])
        .row(vec![
            "Mispredict penalty".into(),
            format!("{} cycles", c.mispredict_penalty),
        ])
        .row(vec![
            "Load-to-use latencies".into(),
            format!(
                "L2 {} / L3 {} / DRAM {} cycles",
                c.l2_latency, c.l3_latency, c.memory_latency
            ),
        ])
        .row(vec!["Cores".into(), format!("{}", c.cores)]);
    a.tables.push(t);
    a
}

fn table2(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Table2);
    let mut t = Table::new(
        "Table II analogue: average performance characteristics",
        &[
            "Suite",
            "Input",
            "Pairs",
            "Instr (B, paper scale)",
            "IPC",
            "Exec time (s, projected)",
        ],
    );
    t.numeric();
    for row in table_two_rows(&data.cpu17) {
        t.row(vec![
            row.suite.label().into(),
            row.size.label().into(),
            row.pairs.to_string(),
            num(row.instructions_billions, 3),
            num(row.ipc, 3),
            num(row.execution_seconds, 3),
        ]);
    }
    a.tables.push(t);
    a
}

fn comparison_table(
    data: &Dataset,
    id: ExperimentId,
    title: &str,
    metrics: &[Metric<'_>],
) -> Artifact {
    let mut a = Artifact::new(id);
    let cpu17_ref: Vec<CharRecord> = data.cpu17_at(InputSize::Ref).into_iter().cloned().collect();
    let mut headers: Vec<String> = vec!["Suite".into()];
    for (name, _) in metrics {
        headers.push(format!("{name} Avg"));
        headers.push(format!("{name} Std"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    t.numeric();
    for row in compare_rows(&data.cpu06, &cpu17_ref, metrics) {
        let mut cells = vec![row.label()];
        for cell in &row.cells {
            cells.push(num(cell.mean, 3));
            cells.push(num(cell.std, 3));
        }
        t.row(cells);
    }
    a.tables.push(t);
    a
}

fn table8() -> Artifact {
    let mut a = Artifact::new(ExperimentId::Table8);
    let mut t = Table::new(
        "Table VIII analogue: the 20 PCA characteristics",
        &["#", "Characteristic"],
    );
    for (i, c) in CHARACTERISTICS.iter().enumerate() {
        t.row(vec![(i + 1).to_string(), c.name.into()]);
    }
    a.tables.push(t);
    a
}

fn table9(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Table9);
    let wanted = ["603.bwaves_s-in1", "603.bwaves_s-in2", "607.cactuBSSN_s"];
    let refs = data.cpu17_at(InputSize::Ref);
    let mut t = Table::new(
        "Table IX analogue: validating PC clustering",
        &["Characteristic", wanted[0], wanted[1], wanted[2]],
    );
    t.numeric();
    let find = |id: &str| refs.iter().find(|r| r.id == id).copied();
    let records: Vec<Option<&CharRecord>> = wanted.iter().map(|w| find(w)).collect();
    let mut push_row = |name: &str, f: &dyn Fn(&CharRecord) -> f64, prec: usize| {
        let cells: Vec<String> = records
            .iter()
            .map(|r| r.map(|r| num(f(r), prec)).unwrap_or_else(|| "n/a".into()))
            .collect();
        t.row(vec![
            name.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    };
    push_row("Instruction count (B)", &|r| r.instructions_billions, 3);
    push_row("% Loads", &|r| r.load_pct, 3);
    push_row("% Stores", &|r| r.store_pct, 3);
    push_row("% Branches", &|r| r.branch_pct, 3);
    push_row("RSS (GiB)", &|r| r.rss_gib, 3);
    push_row("VSZ (GiB)", &|r| r.vsz_gib, 3);
    a.tables.push(t);
    a
}

fn subset_for(records: &[&CharRecord]) -> Option<SubsetAnalysis> {
    if records.len() < 3 {
        return None;
    }
    let owned: Vec<CharRecord> = records.iter().map(|&r| r.clone()).collect();
    let analysis = RedundancyAnalysis::fit_paper(&owned).ok()?;
    SubsetAnalysis::fit(records, &analysis.score_rows(), Linkage::Average).ok()
}

fn table10(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Table10);
    let mut t = Table::new(
        "Table X analogue: suggested representative subsets",
        &[
            "Group",
            "k",
            "Benchmarks",
            "Subset time (s)",
            "Full time (s)",
            "% Saving",
        ],
    );
    // Alongside our Pareto-knee choice, also report the subset at the
    // paper's own cluster counts (rate 12, speed 10) for direct comparison.
    for ((label, records), paper_k) in [("rate", data.rate_ref()), ("speed", data.speed_ref())]
        .into_iter()
        .zip([12, 10])
    {
        match subset_for(&records) {
            Some(s) => {
                t.row(vec![
                    format!("{label} (knee)"),
                    s.chosen_k.to_string(),
                    s.representative_ids().join(", "),
                    num(s.subset_seconds, 3),
                    num(s.full_seconds, 3),
                    num(s.saving_pct(), 3),
                ]);
                if paper_k <= records.len() {
                    if let Some(p) = s.curve.iter().find(|p| p.k == paper_k) {
                        t.row(vec![
                            format!("{label} (paper k)"),
                            paper_k.to_string(),
                            "(same clustering, cut at the paper's k)".into(),
                            num(p.subset_seconds, 3),
                            num(s.full_seconds, 3),
                            num((1.0 - p.subset_seconds / s.full_seconds) * 100.0, 3),
                        ]);
                    }
                }
            }
            None => {
                t.row(vec![
                    label.into(),
                    "-".into(),
                    "(too few pairs)".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    a.tables.push(t);
    a
}

/// Builds the Fig. 1/6-style pair of bar charts (rate, speed) for a metric.
fn per_app_figure(
    data: &Dataset,
    id: ExperimentId,
    metric_name: &str,
    f: &dyn Fn(&CharRecord) -> f64,
) -> Artifact {
    let mut a = Artifact::new(id);
    for (label, suites) in [
        ("rate", [Suite::RateInt, Suite::RateFp]),
        ("speed", [Suite::SpeedInt, Suite::SpeedFp]),
    ] {
        let mut fig = Figure::new(&format!("{metric_name} — {label} mini-suites"), Kind::Bar);
        for suite in suites {
            let records = data.mini_suite_ref(suite);
            if records.is_empty() {
                continue;
            }
            let labels: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
            let values: Vec<f64> = records.iter().map(|r| f(r)).collect();
            fig.push(Series::bars(suite.label(), &labels, &values));
        }
        a.figures.push(fig);
    }
    a
}

fn fig2(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig2);
    for (label, suites) in [
        ("rate", [Suite::RateInt, Suite::RateFp]),
        ("speed", [Suite::SpeedInt, Suite::SpeedFp]),
    ] {
        let mut fig = Figure::new(
            &format!("Memory micro-op breakdown (%) — {label} mini-suites"),
            Kind::Bar,
        );
        let mut labels: Vec<String> = Vec::new();
        let mut loads = Vec::new();
        let mut stores = Vec::new();
        for suite in suites {
            for r in data.mini_suite_ref(suite) {
                labels.push(r.id.clone());
                loads.push(r.load_pct);
                stores.push(r.store_pct);
            }
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        fig.push(Series::bars("% loads", &label_refs, &loads));
        fig.push(Series::bars("% stores", &label_refs, &stores));
        a.figures.push(fig);
    }
    a
}

fn fig3(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig3);
    for (label, suites) in [
        ("rate", [Suite::RateInt, Suite::RateFp]),
        ("speed", [Suite::SpeedInt, Suite::SpeedFp]),
    ] {
        let mut fig = Figure::new(
            &format!("Branch characteristics (%) — {label} mini-suites"),
            Kind::Bar,
        );
        let mut labels: Vec<String> = Vec::new();
        let mut total = Vec::new();
        let mut conditional = Vec::new();
        for suite in suites {
            for r in data.mini_suite_ref(suite) {
                labels.push(r.id.clone());
                total.push(r.branch_pct);
                conditional
                    .push(r.branch_pct * r.branch_kind_frac(Event::BrInstExecAllConditional));
            }
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        fig.push(Series::bars("% branches", &label_refs, &total));
        fig.push(Series::bars("% conditional", &label_refs, &conditional));
        a.figures.push(fig);
    }
    a
}

fn fig4(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig4);
    for (label, suites) in [
        ("rate", [Suite::RateInt, Suite::RateFp]),
        ("speed", [Suite::SpeedInt, Suite::SpeedFp]),
    ] {
        let mut fig = Figure::new(
            &format!("Memory footprint (GiB) — {label} mini-suites"),
            Kind::Bar,
        );
        let mut labels: Vec<String> = Vec::new();
        let mut rss = Vec::new();
        let mut vsz = Vec::new();
        for suite in suites {
            for r in data.mini_suite_ref(suite) {
                labels.push(r.id.clone());
                rss.push(r.rss_gib);
                vsz.push(r.vsz_gib);
            }
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        fig.push(Series::bars("RSS", &label_refs, &rss));
        fig.push(Series::bars("VSZ", &label_refs, &vsz));
        a.figures.push(fig);
    }
    a
}

fn fig5(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig5);
    for (label, suites) in [
        ("rate", [Suite::RateInt, Suite::RateFp]),
        ("speed", [Suite::SpeedInt, Suite::SpeedFp]),
    ] {
        let mut fig = Figure::new(
            &format!("Cache miss rates (%) — {label} mini-suites"),
            Kind::Bar,
        );
        let mut labels: Vec<String> = Vec::new();
        let (mut m1, mut m2, mut m3) = (Vec::new(), Vec::new(), Vec::new());
        for suite in suites {
            for r in data.mini_suite_ref(suite) {
                labels.push(r.id.clone());
                m1.push(r.l1_miss_pct);
                m2.push(r.l2_miss_pct);
                m3.push(r.l3_miss_pct);
            }
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        fig.push(Series::bars("L1 miss", &label_refs, &m1));
        fig.push(Series::bars("L2 miss", &label_refs, &m2));
        fig.push(Series::bars("L3 miss", &label_refs, &m3));
        a.figures.push(fig);
    }
    a
}

fn fig7(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig7);
    let refs = data.cpu17_at(InputSize::Ref);
    let owned: Vec<CharRecord> = refs.iter().map(|&r| r.clone()).collect();
    let Ok(analysis) = RedundancyAnalysis::fit_paper(&owned) else {
        a.texts
            .push(("note".into(), "too few records for PCA".into()));
        return a;
    };
    let labels: Vec<&str> = analysis.ids.iter().map(String::as_str).collect();
    let mut panels = vec![(0usize, 1usize)];
    if analysis.n_components >= 4 {
        panels.push((2, 3));
    }
    for (cx, cy) in panels {
        let x: Vec<f64> = (0..labels.len())
            .map(|i| analysis.scores[(i, cx)])
            .collect();
        let y: Vec<f64> = (0..labels.len())
            .map(|i| analysis.scores[(i, cy)])
            .collect();
        let mut fig = Figure::new(
            &format!("PC{} vs PC{} scores (ref pairs)", cx + 1, cy + 1),
            Kind::Scatter,
        );
        fig.push(Series::points("pairs", &labels, &x, &y));
        a.figures.push(fig);
    }
    a.texts.push((
        "explained variance".into(),
        format!(
            "{} components retained, {:.3}% of total variance (paper: 4 components, 76.321%)",
            analysis.n_components,
            analysis.explained * 100.0
        ),
    ));
    a
}

fn fig8(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig8);
    let refs = data.cpu17_at(InputSize::Ref);
    let owned: Vec<CharRecord> = refs.iter().map(|&r| r.clone()).collect();
    let Ok(analysis) = RedundancyAnalysis::fit_paper(&owned) else {
        a.texts
            .push(("note".into(), "too few records for PCA".into()));
        return a;
    };
    let labels: Vec<&str> = CHARACTERISTICS.iter().map(|c| c.name).collect();
    let mut fig = Figure::new("Factor loadings per characteristic", Kind::Bar);
    for k in 0..analysis.n_components {
        let values: Vec<f64> = (0..labels.len())
            .map(|v| analysis.loadings[(v, k)])
            .collect();
        // Bars render magnitudes; signs are preserved in the CSV.
        let magnitudes: Vec<f64> = values.iter().map(|v| v.abs()).collect();
        fig.push(Series::points(
            &format!("PC{}", k + 1),
            &labels,
            &(0..labels.len()).map(|i| i as f64).collect::<Vec<_>>(),
            &values,
        ));
        let _ = magnitudes;
    }
    // Render as CSV-friendly point series but present dominants as text.
    for k in 0..analysis.n_components {
        let dom = analysis.dominant_characteristics(k, 4);
        let body = dom
            .iter()
            .map(|(name, loading)| format!("{name}: {loading:+.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        a.texts.push((format!("PC{} dominated by", k + 1), body));
    }
    a.figures.push(fig);
    a
}

fn fig9(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig9);
    for (label, records) in [("rate", data.rate_ref()), ("speed", data.speed_ref())] {
        let Some(s) = subset_for(&records) else {
            a.texts.push((label.into(), "(too few pairs)".into()));
            continue;
        };
        let labels: Vec<&str> = s.ids.iter().map(String::as_str).collect();
        match s.dendrogram.render_ascii(&labels, 100) {
            Ok(text) => a.texts.push((format!("{label} dendrogram"), text)),
            Err(e) => a.texts.push((label.into(), format!("render error: {e}"))),
        }
    }
    a
}

fn fig10(data: &Dataset) -> Artifact {
    let mut a = Artifact::new(ExperimentId::Fig10);
    for (label, records) in [("rate", data.rate_ref()), ("speed", data.speed_ref())] {
        let Some(s) = subset_for(&records) else {
            a.texts.push((label.into(), "(too few pairs)".into()));
            continue;
        };
        let ks: Vec<f64> = s.curve.iter().map(|p| p.k as f64).collect();
        let k_labels: Vec<String> = s.curve.iter().map(|p| p.k.to_string()).collect();
        let k_refs: Vec<&str> = k_labels.iter().map(String::as_str).collect();
        // Normalize both objectives to [0,1] so one chart shows the trade-off.
        let max_sse = s
            .curve
            .iter()
            .map(|p| p.sse)
            .fold(f64::MIN_POSITIVE, f64::max);
        let max_t = s
            .curve
            .iter()
            .map(|p| p.subset_seconds)
            .fold(f64::MIN_POSITIVE, f64::max);
        let sse: Vec<f64> = s.curve.iter().map(|p| p.sse / max_sse).collect();
        let time: Vec<f64> = s.curve.iter().map(|p| p.subset_seconds / max_t).collect();
        let mut fig = Figure::new(
            &format!("SSE vs subset time over cluster count — {label}"),
            Kind::Line,
        );
        fig.push(Series::points("normalized SSE", &k_refs, &ks, &sse));
        fig.push(Series::points(
            "normalized subset time",
            &k_refs,
            &ks,
            &time,
        ));
        a.figures.push(fig);
        a.texts.push((
            format!("{label} Pareto-optimal k"),
            format!(
                "k = {} (paper: rate 12, speed 10); saving {:.3}% (paper: rate 57.116%, speed 62.052%)",
                s.chosen_k,
                s.saving_pct()
            ),
        ));
    }
    a
}

/// Correlation notes the paper reports inline (Sections IV-C and IV-D):
/// RSS/VSZ and per-level miss rates vs IPC across all applications.
pub fn correlation_notes(data: &Dataset) -> Vec<(String, f64)> {
    let refs = data.cpu17_at(InputSize::Ref);
    let ipc: Vec<f64> = refs.iter().map(|r| r.ipc).collect();
    let corr = |f: &dyn Fn(&CharRecord) -> f64| -> f64 {
        let xs: Vec<f64> = refs.iter().map(|&r| f(r)).collect();
        summary::pearson(&xs, &ipc).unwrap_or(0.0)
    };
    vec![
        ("RSS vs IPC".into(), corr(&|r| r.rss_gib)),
        ("VSZ vs IPC".into(), corr(&|r| r.vsz_gib)),
        ("L1 miss vs IPC".into(), corr(&|r| r.l1_miss_pct)),
        ("L2 miss vs IPC".into(), corr(&|r| r.l2_miss_pct)),
        ("L3 miss vs IPC".into(), corr(&|r| r.l3_miss_pct)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn demo() -> &'static Dataset {
        static DATA: OnceLock<Dataset> = OnceLock::new();
        DATA.get_or_init(Dataset::demo)
    }

    #[test]
    fn ids_round_trip_slugs() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_slug(id.slug()), Some(id));
        }
        assert_eq!(ExperimentId::from_slug("nope"), None);
    }

    #[test]
    fn twenty_experiments() {
        assert_eq!(ExperimentId::ALL.len(), 20);
    }

    #[test]
    fn every_experiment_produces_output_on_demo_data() {
        let data = demo();
        for id in ExperimentId::ALL {
            let artifact = run(id, data).unwrap();
            let text = artifact.render();
            assert!(
                !artifact.tables.is_empty()
                    || !artifact.figures.is_empty()
                    || !artifact.texts.is_empty(),
                "{id}: empty artifact"
            );
            assert!(text.len() > 20, "{id}: trivial render");
        }
    }

    #[test]
    fn table1_reflects_haswell() {
        let a = run(ExperimentId::Table1, demo()).unwrap();
        let text = a.render();
        assert!(text.contains("Haswell"));
        assert!(text.contains("30 MiB shared"));
    }

    #[test]
    fn table9_has_bwaves_columns() {
        let a = run(ExperimentId::Table9, demo()).unwrap();
        let text = a.render();
        assert!(text.contains("603.bwaves_s-in1"));
        assert!(text.contains("607.cactuBSSN_s"));
    }

    #[test]
    fn table10_reports_savings() {
        let a = run(ExperimentId::Table10, demo()).unwrap();
        let text = a.render();
        assert!(text.contains("rate"));
        assert!(text.contains("speed"));
    }

    #[test]
    fn fig10_reports_chosen_k() {
        let a = run(ExperimentId::Fig10, demo()).unwrap();
        let text = a.render();
        assert!(text.contains("Pareto-optimal k"), "{text}");
    }

    #[test]
    fn csv_rendering_nonempty_for_tables_and_figures() {
        let data = demo();
        for id in [ExperimentId::Table2, ExperimentId::Fig1, ExperimentId::Fig7] {
            let a = run(id, data).unwrap();
            assert!(!a.render_csv().trim().is_empty(), "{id}");
        }
    }

    #[test]
    fn correlations_are_in_range() {
        for (name, c) in correlation_notes(demo()) {
            assert!((-1.0..=1.0).contains(&c), "{name}: {c}");
        }
    }
}
