//! Design-choice ablation studies.
//!
//! DESIGN.md calls out the places where this reproduction had to choose a
//! mechanism the paper does not pin down (clustering linkage, representative
//! rule) or where the substrate exposes a knob the paper's fixed hardware
//! could not vary (branch predictor, replacement policy, prefetcher). Each
//! function here quantifies one of those choices as a table.

use simreport::table::{num, Table};
use stat_analysis::cluster::Linkage;
use stat_analysis::distance::Metric;
use stat_analysis::kmedoids::k_medoids;
use stat_analysis::silhouette::mean_silhouette;
use uarch_sim::branch::PredictorKind;
use uarch_sim::config::SystemConfig;
use uarch_sim::engine::Engine;
use uarch_sim::exec::ExecPlan;
use uarch_sim::hierarchy::Hierarchy;
use uarch_sim::prefetch::Prefetcher;
use uarch_sim::replacement::Policy;
use workload_synth::cpu2017;
use workload_synth::generator::{TraceGenerator, TraceScale};
use workload_synth::profile::InputSize;

use crate::cache::{characterize_pair_cached, CacheContext};
use crate::characterize::{characterize_pair, CharRecord, RunConfig};
use crate::redundancy::RedundancyAnalysis;
use crate::subset::SubsetAnalysis;

/// Compares the four linkage criteria on the same ref records: chosen `k`,
/// time saving, and the silhouette of the resulting clustering.
pub fn linkage_ablation(records: &[&CharRecord]) -> Table {
    let mut table = Table::new(
        "Ablation: hierarchical-clustering linkage criterion",
        &["Linkage", "Chosen k", "% time saving", "Silhouette"],
    );
    table.numeric();
    let owned: Vec<CharRecord> = records.iter().map(|&r| r.clone()).collect();
    let Ok(analysis) = RedundancyAnalysis::fit_paper(&owned) else {
        table.row(vec![
            "(too few records)".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        return table;
    };
    let rows = analysis.score_rows();
    for linkage in [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Ward,
    ] {
        match SubsetAnalysis::fit(records, &rows, linkage) {
            Ok(s) => {
                let labels = s.dendrogram.cut(s.chosen_k).expect("valid k");
                let sil = mean_silhouette(&rows, &labels, Metric::Euclidean).unwrap_or(0.0);
                table.row(vec![
                    format!("{linkage:?}"),
                    s.chosen_k.to_string(),
                    num(s.saving_pct(), 2),
                    num(sil, 3),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    format!("{linkage:?}"),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    table
}

/// Compares the paper's subsetter (hierarchical + shortest-runtime rule)
/// against a k-medoids baseline at the same `k`.
pub fn subsetter_ablation(records: &[&CharRecord]) -> Table {
    let mut table = Table::new(
        "Ablation: subsetting method (same k)",
        &["Method", "k", "Subset time (s)", "% time saving"],
    );
    table.numeric();
    let owned: Vec<CharRecord> = records.iter().map(|&r| r.clone()).collect();
    let Ok(analysis) = RedundancyAnalysis::fit_paper(&owned) else {
        table.row(vec![
            "(too few records)".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        return table;
    };
    let rows = analysis.score_rows();
    let Ok(hier) = SubsetAnalysis::fit(records, &rows, Linkage::Average) else {
        table.row(vec![
            "(subset failed)".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        return table;
    };
    let full: f64 = records.iter().map(|r| r.projected_seconds).sum();
    table.row(vec![
        "hierarchical + min-time".into(),
        hier.chosen_k.to_string(),
        num(hier.subset_seconds, 2),
        num(hier.saving_pct(), 2),
    ]);
    if let Ok(km) = k_medoids(&rows, hier.chosen_k, Metric::Euclidean) {
        let time: f64 = km
            .medoids
            .iter()
            .map(|&m| records[m].projected_seconds)
            .sum();
        table.row(vec![
            "k-medoids (medoids as reps)".into(),
            hier.chosen_k.to_string(),
            num(time, 2),
            num((1.0 - time / full) * 100.0, 2),
        ]);
    }
    table
}

/// Mispredict rates of headline applications under each predictor design.
pub fn predictor_ablation(config: &SystemConfig, scale: &TraceScale) -> Table {
    let apps = ["541.leela_r", "505.mcf_r", "525.x264_r", "519.lbm_r"];
    let mut headers: Vec<String> = vec!["Predictor".into()];
    headers.extend(apps.iter().map(|a| format!("{a} misp %")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Ablation: branch predictor design", &header_refs);
    table.numeric();
    for kind in [
        PredictorKind::AlwaysTaken,
        PredictorKind::Bimodal,
        PredictorKind::GShare,
        PredictorKind::Tournament,
    ] {
        let mut cells = vec![format!("{kind:?}")];
        for name in apps {
            let app = cpu2017::app(name).expect("known app");
            let pair = &app.pairs(InputSize::Ref)[0];
            let hints = pair.input.behavior.hints(config);
            let trace = TraceGenerator::new(
                &pair.input.behavior,
                config,
                pair.seed(),
                scale.budget(&pair.input.behavior).min(300_000),
            )
            .expect("curated profiles are valid");
            let mut engine = Engine::with_predictor(config, kind);
            let session = engine.execute(trace, &ExecPlan::new().hints(hints));
            cells.push(num(session.mispredict_rate() * 100.0, 3));
        }
        table.row(cells);
    }
    table
}

/// L1 miss rates of an mcf-like access stream under each replacement policy.
pub fn replacement_ablation(scale: &TraceScale) -> Table {
    replacement_ablation_with(scale, None)
}

/// [`replacement_ablation`] with an optional result cache: each policy's run
/// is a full characterization under a distinct [`SystemConfig`], so every
/// row is content-addressed and replays from the store on repeated runs.
pub fn replacement_ablation_with(scale: &TraceScale, cache: Option<&CacheContext>) -> Table {
    let mut table = Table::new(
        "Ablation: cache replacement policy (505.mcf_r trace)",
        &["Policy", "L1 miss %", "L2 local miss %", "L3 local miss %"],
    );
    table.numeric();
    let app = cpu2017::app("505.mcf_r").expect("mcf exists");
    let pair = &app.pairs(InputSize::Ref)[0];
    for policy in [
        Policy::Lru,
        Policy::Fifo,
        Policy::Random,
        Policy::TreePlru,
        Policy::Srrip,
    ] {
        let run_config = RunConfig {
            system: SystemConfig::haswell_e5_2650l_v3().with_policy(policy),
            scale: *scale,
            sampler: None,
        };
        let record = match cache {
            Some(ctx) => characterize_pair_cached(pair, &run_config, ctx),
            None => characterize_pair(pair, &run_config),
        }
        .expect("curated mcf profile characterizes cleanly");
        table.row(vec![
            format!("{policy:?}"),
            num(record.l1_miss_pct, 3),
            num(record.l2_miss_pct, 3),
            num(record.l3_miss_pct, 3),
        ]);
    }
    table
}

/// Effect of hardware prefetchers on a purely streaming access pattern.
pub fn prefetcher_ablation() -> Table {
    let mut table = Table::new(
        "Ablation: data prefetcher on a streaming pattern",
        &["Prefetcher", "L2 hits", "Prefetches issued"],
    );
    table.numeric();
    let config = SystemConfig::haswell_e5_2650l_v3();
    for prefetcher in [Prefetcher::None, Prefetcher::NextLine, Prefetcher::Stream] {
        let mut h = Hierarchy::with_prefetcher(&config, prefetcher);
        for i in 0..200_000u64 {
            h.load(i * 64);
        }
        table.row(vec![
            format!("{prefetcher:?}"),
            h.l2_stats().hits.to_string(),
            h.prefetch_stats().issued.to_string(),
        ]);
    }
    table
}

/// CPI stacks of the given records — the interval-model decomposition of
/// each pair's cycles per instruction (an extension view the paper's
/// counter-only methodology cannot produce).
pub fn cpi_stack_table(records: &[&CharRecord]) -> Table {
    let mut table = Table::new(
        "Extension: CPI stacks (cycles per instruction)",
        &[
            "Pair", "Base", "Branch", "Memory", "Frontend", "Total", "IPC",
        ],
    );
    table.numeric();
    for r in records {
        let total = r.cpi_base + r.cpi_branch + r.cpi_memory + r.cpi_frontend;
        table.row(vec![
            r.id.clone(),
            num(r.cpi_base, 3),
            num(r.cpi_branch, 3),
            num(r.cpi_memory, 3),
            num(r.cpi_frontend, 3),
            num(total, 3),
            num(r.ipc, 3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_suite, RunConfig};

    fn sample() -> Vec<CharRecord> {
        let apps = vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("519.lbm_r").unwrap(),
            cpu2017::app("525.x264_r").unwrap(),
            cpu2017::app("541.leela_r").unwrap(),
            cpu2017::app("548.exchange2_r").unwrap(),
        ];
        characterize_suite(&apps, InputSize::Ref, &RunConfig::quick()).unwrap()
    }

    #[test]
    fn linkage_table_has_four_rows() {
        let records = sample();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let t = linkage_ablation(&refs);
        assert_eq!(t.n_rows(), 4);
        assert!(t.render_ascii().contains("Ward"));
    }

    #[test]
    fn subsetter_table_compares_two_methods() {
        let records = sample();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let t = subsetter_ablation(&refs);
        assert_eq!(t.n_rows(), 2);
        assert!(t.render_ascii().contains("k-medoids"));
    }

    #[test]
    fn predictor_ablation_orders_sanely() {
        let t = predictor_ablation(&SystemConfig::haswell_e5_2650l_v3(), &TraceScale::quick());
        assert_eq!(t.n_rows(), 4);
        // leela mispredicts (column 1) must be worst under AlwaysTaken and
        // best under Tournament.
        let parse = |row: usize| -> f64 { t.rows()[row][1].parse().unwrap() };
        let always = parse(0);
        let tournament = parse(3);
        assert!(
            always > tournament,
            "always-taken {always} must mispredict more than tournament {tournament}"
        );
    }

    #[test]
    fn prefetcher_ablation_shows_benefit() {
        let t = prefetcher_ablation();
        let hits = |row: usize| -> u64 { t.rows()[row][1].parse().unwrap() };
        assert!(hits(1) > hits(0), "next-line must add L2 hits");
        assert!(hits(2) > hits(0), "stream must add L2 hits");
    }

    #[test]
    fn replacement_ablation_runs_all_policies() {
        let t = replacement_ablation(&TraceScale::quick());
        assert_eq!(t.n_rows(), 5);
        assert!(t.render_ascii().contains("Srrip"));
    }

    #[test]
    fn replacement_ablation_cache_round_trip() {
        let root =
            std::env::temp_dir().join(format!("workchar-ablation-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = CacheContext::open(&root).unwrap();
        let scale = TraceScale::quick();
        let uncached = replacement_ablation(&scale);
        let cold = replacement_ablation_with(&scale, Some(&cache));
        let warm = replacement_ablation_with(&scale, Some(&cache));
        assert_eq!(
            uncached.rows(),
            cold.rows(),
            "cache must not change the table"
        );
        assert_eq!(cold.rows(), warm.rows());
        let snap = cache.stats.snapshot();
        assert_eq!(snap.misses, 5, "five policies simulated once");
        assert_eq!(snap.hits, 5, "then all served from the store");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cpi_stack_components_reconstruct_ipc() {
        let records = sample();
        let refs: Vec<&CharRecord> = records.iter().collect();
        let t = cpi_stack_table(&refs);
        assert_eq!(t.n_rows(), records.len());
        for r in &records {
            if r.suite.is_speed() {
                continue; // thread overhead scales cycles beyond the stack
            }
            let total = r.cpi_base + r.cpi_branch + r.cpi_memory + r.cpi_frontend;
            let ipc_from_stack = 1.0 / total;
            assert!(
                (ipc_from_stack - r.ipc).abs() / r.ipc < 0.02,
                "{}: stack 1/{total} vs ipc {}",
                r.id,
                r.ipc
            );
        }
    }

    #[test]
    fn memory_bound_app_is_memory_dominated() {
        let records = sample();
        let mcf = records.iter().find(|r| r.id == "505.mcf_r").unwrap();
        assert!(
            mcf.cpi_memory > mcf.cpi_frontend,
            "mcf memory stalls {} must dominate frontend {}",
            mcf.cpi_memory,
            mcf.cpi_frontend
        );
    }
}
