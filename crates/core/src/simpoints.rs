//! Roster-wide simpoint campaigns: representative-interval analysis
//! (`simpoint::analyze`) of every application–input pair, persisted as
//! schema-versioned [`SimpointRecord`]s in a content-addressed store.
//!
//! The store layout mirrors [`crate::cache`]: each record's key is derived
//! from the pair identity, the simulated system, the trace scale, and every
//! simpoint tuning knob, so re-running a campaign with any ingredient
//! changed transparently re-analyzes only the affected pairs. Campaigns are
//! cache-first — a decodable stored record short-circuits the (two-pass)
//! analysis — and run pairs in parallel on the panic-isolated
//! [`Scheduler`]. The `reproduce`/`extensions` binaries drive this behind
//! `--simpoint`; `simpoint-report` renders and gates the stored records.

use simpoint::{analyze, GapMode, SimpointConfig, SimpointRecord, SIMPOINT_SCHEMA_VERSION};
use simreport::table::{num, Table};
use simstore::{Key, Scheduler, StableHash, StableHasher, Store};
use uarch_sim::counters::Event;
use workload_synth::profile::{AppInputPair, AppProfile, InputSize};

use crate::cache::hash_system;
use crate::characterize::{prepared_run, RunConfig};
use crate::error::{Error, Result};

/// Feeds every result-affecting simpoint knob into `h`.
fn hash_simpoint_config(h: &mut StableHasher, sp: &SimpointConfig) {
    h.write_u32(SIMPOINT_SCHEMA_VERSION);
    h.write_usize(sp.target_intervals);
    h.write_u64(sp.interval_ops);
    h.write_usize(sp.max_k);
    h.write_f64(sp.error_budget);
    h.write_u8(match sp.gap_mode {
        GapMode::Warm => 0,
        GapMode::Skip => 1,
    });
    h.write_usize(sp.warmup_intervals);
    match sp.force_k {
        Some(k) => {
            h.write_u8(1);
            h.write_usize(k);
        }
        None => h.write_u8(0),
    }
}

/// The content key addressing `pair`'s simpoint record under the given run
/// and simpoint configurations.
pub fn simpoint_key(pair: &AppInputPair<'_>, run: &RunConfig, sp: &SimpointConfig) -> Key {
    let mut h = StableHasher::new();
    pair.stable_hash(&mut h);
    hash_system(&mut h, &run.system);
    run.scale.stable_hash(&mut h);
    hash_simpoint_config(&mut h, sp);
    h.finish()
}

/// Analyzes one pair end to end and packages the result.
///
/// # Errors
///
/// [`Error::Behavior`] when the pair's profile fails validation;
/// [`Error::Stats`] when clustering rejects the feature matrix;
/// [`Error::MissingData`] when the pair's trace is empty.
pub fn analyze_pair(
    pair: &AppInputPair<'_>,
    run: &RunConfig,
    sp: &SimpointConfig,
) -> Result<SimpointRecord> {
    let (trace, hints) = prepared_run(pair, run)?;
    let analysis = analyze(&run.system, &trace, &hints, sp).map_err(|e| match e {
        simpoint::SimpointError::EmptyTrace => {
            Error::MissingData(format!("pair {} has an empty trace", pair.id()))
        }
        simpoint::SimpointError::Stats(e) => Error::Stats(e),
    })?;
    Ok(SimpointRecord::from_analysis(&pair.id(), &analysis))
}

/// [`analyze_pair`] through an optional store: a stored, decodable record
/// under the pair's key is returned as-is; otherwise the pair is analyzed
/// and the fresh record persisted (write failures are non-fatal — the
/// record is still returned).
pub fn analyze_pair_cached(
    pair: &AppInputPair<'_>,
    run: &RunConfig,
    sp: &SimpointConfig,
    store: Option<&Store>,
) -> Result<SimpointRecord> {
    let key = simpoint_key(pair, run, sp);
    if let Some(store) = store {
        if let Some(record) = store.get(key).and_then(|p| SimpointRecord::decode(&p).ok()) {
            return Ok(record);
        }
    }
    let record = analyze_pair(pair, run, sp)?;
    if let Some(store) = store {
        if let Err(e) = store.put(key, &record.encode()) {
            eprintln!("warning: cannot persist simpoint record {}: {e}", record.id);
        }
    }
    Ok(record)
}

/// Analyzes an explicit pair list in parallel on the [`Scheduler`],
/// preserving order, cache-first when a store is given.
///
/// # Errors
///
/// [`Error::Characterization`] listing every pair that still failed after
/// the scheduler's retry.
pub fn analyze_pairs(
    pairs: &[AppInputPair<'_>],
    run: &RunConfig,
    sp: &SimpointConfig,
    store: Option<&Store>,
) -> Result<Vec<SimpointRecord>> {
    Scheduler::available()
        .run(
            pairs.len(),
            |i| pairs[i].id(),
            |i| analyze_pair_cached(&pairs[i], run, sp, store).unwrap_or_else(|e| panic!("{e}")),
            |_| {},
        )
        .into_results()
        .map_err(|failures| Error::Characterization {
            failures,
            total: pairs.len(),
        })
}

/// Runs a simpoint campaign over every input of every application at
/// `size`.
///
/// # Errors
///
/// [`Error::Characterization`] listing every failed pair.
pub fn run_roster(
    apps: &[AppProfile],
    size: InputSize,
    run: &RunConfig,
    sp: &SimpointConfig,
    store: Option<&Store>,
) -> Result<Vec<SimpointRecord>> {
    let pairs: Vec<AppInputPair<'_>> = apps.iter().flat_map(|app| app.pairs(size)).collect();
    analyze_pairs(&pairs, run, sp, store)
}

/// The per-pair speedup-vs-error summary table `simpoint-report` (and the
/// binaries' `--simpoint` sections) print.
pub fn summary_table(records: &[SimpointRecord]) -> Table {
    let mut table = Table::new(
        "Simpoint speedup vs. reconstruction error",
        &[
            "pair",
            "intervals",
            "k",
            "silhouette",
            "speedup",
            "ipc err %",
            "l1 mpki err %",
            "l2 mpki err %",
            "l3 mpki err %",
            "max err %",
        ],
    );
    table.numeric();
    for r in records {
        table.row(vec![
            r.id.clone(),
            r.n_intervals().to_string(),
            r.k().to_string(),
            num(r.silhouette, 3),
            format!("{:.1}x", r.speedup()),
            num(r.ipc_error() * 100.0, 2),
            num(r.mpki_error(Event::MemLoadUopsRetiredL1Miss) * 100.0, 2),
            num(r.mpki_error(Event::MemLoadUopsRetiredL2Miss) * 100.0, 2),
            num(r.mpki_error(Event::MemLoadUopsRetiredL3Miss) * 100.0, 2),
            num(r.max_headline_error() * 100.0, 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_synth::cpu2017;
    use workload_synth::generator::TraceScale;

    fn quick() -> RunConfig {
        RunConfig::quick()
    }

    #[test]
    fn keys_separate_simpoint_configs() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let run = quick();
        let a = simpoint_key(pair, &run, &SimpointConfig::default());
        let b = simpoint_key(
            pair,
            &run,
            &SimpointConfig {
                max_k: 4,
                ..SimpointConfig::default()
            },
        );
        let c = simpoint_key(
            pair,
            &run,
            &SimpointConfig {
                gap_mode: GapMode::Skip,
                ..SimpointConfig::default()
            },
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Same ingredients, same key.
        assert_eq!(a, simpoint_key(pair, &run, &SimpointConfig::default()));
        // The run configuration is part of the identity too.
        let other_scale = RunConfig {
            scale: TraceScale::default(),
            ..quick()
        };
        assert_ne!(
            a,
            simpoint_key(pair, &other_scale, &SimpointConfig::default())
        );
    }

    #[test]
    fn cached_campaign_replays_identical_records() {
        let root =
            std::env::temp_dir().join(format!("workchar-simpoint-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Store::open(&root).unwrap();
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pairs = app.pairs(InputSize::Ref);
        let run = quick();
        let sp = SimpointConfig::default();
        let cold = analyze_pairs(&pairs, &run, &sp, Some(&store)).unwrap();
        assert_eq!(store.len(), pairs.len(), "every record persisted");
        let warm = analyze_pairs(&pairs, &run, &sp, Some(&store)).unwrap();
        assert_eq!(cold, warm, "store replay must be lossless");
        let uncached = analyze_pairs(&pairs, &run, &sp, None).unwrap();
        assert_eq!(cold, uncached, "caching must not change results");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn summary_table_is_rectangular() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let record = analyze_pair(pair, &quick(), &SimpointConfig::default()).unwrap();
        assert_eq!(record.id, "505.mcf_r");
        let table = summary_table(&[record]);
        assert_eq!(table.n_rows(), 1);
        assert_eq!(table.rows()[0].len(), table.headers().len());
        let text = table.render_ascii();
        assert!(text.contains("505.mcf_r"), "{text}");
    }
}
