//! The 20 microarchitecture-independent characteristics of Table VIII.
//!
//! These — and only these — feed the PCA redundancy analysis: six absolute
//! counts, seven instruction-mix percentages, five branch-type percentages,
//! and the two footprint metrics. All are derivable without knowing the
//! cache or predictor configuration, which is what makes the subsetting
//! methodology portable across machines.

use uarch_sim::counters::Event;

use crate::characterize::CharRecord;

/// One named characteristic: an extractor over a [`CharRecord`].
#[derive(Clone, Copy)]
pub struct Characteristic {
    /// The paper's name for the characteristic (Table VIII).
    pub name: &'static str,
    extract: fn(&CharRecord) -> f64,
}

impl Characteristic {
    /// Extracts the characteristic's value from a record.
    pub fn value(&self, record: &CharRecord) -> f64 {
        (self.extract)(record)
    }
}

impl std::fmt::Debug for Characteristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Characteristic")
            .field("name", &self.name)
            .finish()
    }
}

/// Table VIII: the 20 characteristics used for PCA, in the paper's order.
pub const CHARACTERISTICS: [Characteristic; 20] = [
    Characteristic {
        name: "inst_retired.any",
        extract: |r| r.instructions_billions,
    },
    Characteristic {
        name: "mem_uops_retired.all_loads",
        extract: |r| r.projected_billions(Event::MemUopsRetiredAllLoads),
    },
    Characteristic {
        name: "mem_uops_retired.all_stores",
        extract: |r| r.projected_billions(Event::MemUopsRetiredAllStores),
    },
    Characteristic {
        name: "load_uops(%)",
        extract: |r| r.load_pct,
    },
    Characteristic {
        name: "store_uops(%)",
        extract: |r| r.store_pct,
    },
    Characteristic {
        name: "total_mem_uops(%)",
        extract: |r| r.load_pct + r.store_pct,
    },
    Characteristic {
        name: "br_inst_exec.all_branches",
        extract: |r| r.projected_billions(Event::BrInstExecAllBranches),
    },
    Characteristic {
        name: "branch_inst(%)",
        extract: |r| r.branch_pct,
    },
    Characteristic {
        name: "br_inst_exec.all_conditional",
        extract: |r| r.projected_billions(Event::BrInstExecAllConditional),
    },
    Characteristic {
        name: "br_inst_exec.all_direct_jmp",
        extract: |r| r.projected_billions(Event::BrInstExecAllDirectJmp),
    },
    Characteristic {
        name: "br_inst_exec.all_direct_near_call",
        extract: |r| r.projected_billions(Event::BrInstExecAllDirectNearCall),
    },
    Characteristic {
        name: "br_inst_exec.all_indirect_jump_non_call_ret",
        extract: |r| r.projected_billions(Event::BrInstExecAllIndirectJumpNonCallRet),
    },
    Characteristic {
        name: "br_inst_exec.all_indirect_near_return",
        extract: |r| r.projected_billions(Event::BrInstExecAllIndirectNearReturn),
    },
    Characteristic {
        name: "branch_conditional(%)",
        extract: |r| r.branch_kind_frac(Event::BrInstExecAllConditional) * 100.0,
    },
    Characteristic {
        name: "branch_direct_jump(%)",
        extract: |r| r.branch_kind_frac(Event::BrInstExecAllDirectJmp) * 100.0,
    },
    Characteristic {
        name: "branch_near_call(%)",
        extract: |r| r.branch_kind_frac(Event::BrInstExecAllDirectNearCall) * 100.0,
    },
    Characteristic {
        name: "branch_indirect_jump_non_call_ret(%)",
        extract: |r| r.branch_kind_frac(Event::BrInstExecAllIndirectJumpNonCallRet) * 100.0,
    },
    Characteristic {
        name: "branch_indirect_near_return(%)",
        extract: |r| r.branch_kind_frac(Event::BrInstExecAllIndirectNearReturn) * 100.0,
    },
    Characteristic {
        name: "rss",
        extract: |r| r.rss_gib,
    },
    Characteristic {
        name: "vsz",
        extract: |r| r.vsz_gib,
    },
];

/// Extracts the full `[records × 20]` characteristic matrix rows.
pub fn characteristic_rows(records: &[CharRecord]) -> Vec<Vec<f64>> {
    records
        .iter()
        .map(|r| CHARACTERISTICS.iter().map(|c| c.value(r)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_pair, RunConfig};
    use workload_synth::cpu2017;
    use workload_synth::profile::InputSize;

    #[test]
    fn exactly_twenty_characteristics() {
        assert_eq!(CHARACTERISTICS.len(), 20);
        let names: std::collections::HashSet<_> = CHARACTERISTICS.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 20, "names must be unique");
    }

    #[test]
    fn names_match_table_eight() {
        let names: Vec<&str> = CHARACTERISTICS.iter().map(|c| c.name).collect();
        for expected in [
            "inst_retired.any",
            "mem_uops_retired.all_loads",
            "mem_uops_retired.all_stores",
            "load_uops(%)",
            "store_uops(%)",
            "total_mem_uops(%)",
            "br_inst_exec.all_branches",
            "branch_inst(%)",
            "br_inst_exec.all_conditional",
            "br_inst_exec.all_direct_jmp",
            "br_inst_exec.all_direct_near_call",
            "br_inst_exec.all_indirect_jump_non_call_ret",
            "br_inst_exec.all_indirect_near_return",
            "branch_conditional(%)",
            "branch_direct_jump(%)",
            "branch_near_call(%)",
            "branch_indirect_jump_non_call_ret(%)",
            "branch_indirect_near_return(%)",
            "rss",
            "vsz",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn extraction_produces_finite_rows() {
        let app = cpu2017::app("520.omnetpp_r").unwrap();
        let record = characterize_pair(&app.pairs(InputSize::Ref)[0], &RunConfig::quick()).unwrap();
        let rows = characteristic_rows(&[record]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 20);
        assert!(rows[0].iter().all(|v| v.is_finite()));
        // total mem % = load % + store %.
        assert!((rows[0][5] - (rows[0][3] + rows[0][4])).abs() < 1e-9);
        // branch kind percentages sum to 100.
        let kind_sum: f64 = rows[0][13..18].iter().sum();
        assert!((kind_sum - 100.0).abs() < 1e-6);
    }
}
