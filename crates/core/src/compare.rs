//! CPU2006 vs CPU2017 suite comparison — Tables III–VII.

use crate::characterize::CharRecord;
use crate::suitestats::mean_std;

/// Which generation a comparison row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// SPEC CPU2006.
    Cpu2006,
    /// SPEC CPU2017.
    Cpu2017,
}

impl Generation {
    /// The paper's row label prefix.
    pub fn label(self) -> &'static str {
        match self {
            Generation::Cpu2006 => "CPU06",
            Generation::Cpu2017 => "CPU17",
        }
    }
}

/// Which application class a comparison row aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Integer applications only.
    Int,
    /// Floating-point applications only.
    Fp,
    /// Every application.
    All,
}

impl Class {
    /// The three classes in the paper's row order.
    pub const ALL: [Class; 3] = [Class::Int, Class::Fp, Class::All];

    /// The paper's row label suffix.
    pub fn label(self) -> &'static str {
        match self {
            Class::Int => "int",
            Class::Fp => "fp",
            Class::All => "all",
        }
    }

    fn matches(self, record: &CharRecord) -> bool {
        match self {
            Class::Int => record.suite.is_int(),
            Class::Fp => !record.suite.is_int(),
            Class::All => true,
        }
    }
}

/// One (mean, standard deviation) cell of a comparison table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Suite mean of the metric.
    pub mean: f64,
    /// Sample standard deviation across applications.
    pub std: f64,
}

/// A comparison row: generation × class, with cells per requested metric.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Which generation.
    pub generation: Generation,
    /// Which class.
    pub class: Class,
    /// Cells in the metric order passed to [`compare_rows`].
    pub cells: Vec<Cell>,
}

impl CompareRow {
    /// The paper-style row label, e.g. `"CPU17 fp"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.generation.label(), self.class.label())
    }
}

/// A metric extractor with its display name.
pub type Metric<'a> = (&'static str, &'a dyn Fn(&CharRecord) -> f64);

/// Builds the six comparison rows (`CPU06/CPU17 × int/fp/all`) for a metric
/// list, applying per-application averaging for multi-input applications.
pub fn compare_rows(
    cpu06: &[CharRecord],
    cpu17: &[CharRecord],
    metrics: &[Metric<'_>],
) -> Vec<CompareRow> {
    let mut rows = Vec::new();
    for class in Class::ALL {
        for (generation, records) in [(Generation::Cpu2006, cpu06), (Generation::Cpu2017, cpu17)] {
            let per_app = app_averages(records, class);
            let refs: Vec<&CharRecord> = per_app.iter().collect();
            let cells = metrics
                .iter()
                .map(|(_, f)| {
                    let (mean, std) = mean_std(&refs, |r| f(r));
                    Cell { mean, std }
                })
                .collect();
            rows.push(CompareRow {
                generation,
                class,
                cells,
            });
        }
    }
    rows
}

/// Collapses multi-input applications to one averaged record per app, so an
/// application with five inputs is not over-weighted in suite means.
fn app_averages(records: &[CharRecord], class: Class) -> Vec<CharRecord> {
    let mut by_app: std::collections::BTreeMap<&str, Vec<&CharRecord>> =
        std::collections::BTreeMap::new();
    for r in records.iter().filter(|r| class.matches(r)) {
        by_app.entry(r.app.as_str()).or_default().push(r);
    }
    by_app
        .into_values()
        .map(|rs| {
            let n = rs.len() as f64;
            let mut avg = rs[0].clone();
            let mean = |f: fn(&CharRecord) -> f64| rs.iter().map(|r| f(r)).sum::<f64>() / n;
            avg.ipc = mean(|r| r.ipc);
            avg.load_pct = mean(|r| r.load_pct);
            avg.store_pct = mean(|r| r.store_pct);
            avg.branch_pct = mean(|r| r.branch_pct);
            avg.l1_miss_pct = mean(|r| r.l1_miss_pct);
            avg.l2_miss_pct = mean(|r| r.l2_miss_pct);
            avg.l3_miss_pct = mean(|r| r.l3_miss_pct);
            avg.mispredict_pct = mean(|r| r.mispredict_pct);
            avg.rss_gib = mean(|r| r.rss_gib);
            avg.vsz_gib = mean(|r| r.vsz_gib);
            avg.instructions_billions = mean(|r| r.instructions_billions);
            avg.projected_seconds = mean(|r| r.projected_seconds);
            avg
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_suite, RunConfig};
    use workload_synth::profile::InputSize;
    use workload_synth::{cpu2006, cpu2017};

    fn records() -> (Vec<CharRecord>, Vec<CharRecord>) {
        let config = RunConfig::quick();
        let cpu06 = vec![
            cpu2006::suite()
                .into_iter()
                .find(|a| a.name == "429.mcf")
                .unwrap(),
            cpu2006::suite()
                .into_iter()
                .find(|a| a.name == "470.lbm")
                .unwrap(),
        ];
        let cpu17 = vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("519.lbm_r").unwrap(),
        ];
        (
            characterize_suite(&cpu06, InputSize::Ref, &config).unwrap(),
            characterize_suite(&cpu17, InputSize::Ref, &config).unwrap(),
        )
    }

    #[test]
    fn six_rows_in_paper_order() {
        let (c06, c17) = records();
        let ipc: Metric<'_> = ("IPC", &|r: &CharRecord| r.ipc);
        let rows = compare_rows(&c06, &c17, &[ipc]);
        let labels: Vec<String> = rows.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "CPU06 int",
                "CPU17 int",
                "CPU06 fp",
                "CPU17 fp",
                "CPU06 all",
                "CPU17 all"
            ]
        );
    }

    #[test]
    fn all_class_combines_int_and_fp() {
        let (c06, c17) = records();
        let ipc: Metric<'_> = ("IPC", &|r: &CharRecord| r.ipc);
        let rows = compare_rows(&c06, &c17, &[ipc]);
        let get = |label: &str| rows.iter().find(|r| r.label() == label).unwrap().cells[0].mean;
        let int17 = get("CPU17 int");
        let fp17 = get("CPU17 fp");
        let all17 = get("CPU17 all");
        assert!((all17 - (int17 + fp17) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_metrics_produce_multiple_cells() {
        let (c06, c17) = records();
        let m1: Metric<'_> = ("loads", &|r: &CharRecord| r.load_pct);
        let m2: Metric<'_> = ("stores", &|r: &CharRecord| r.store_pct);
        let rows = compare_rows(&c06, &c17, &[m1, m2]);
        assert!(rows.iter().all(|r| r.cells.len() == 2));
    }

    #[test]
    fn app_averaging_prevents_input_overweighting() {
        let config = RunConfig::quick();
        let apps = vec![
            cpu2017::app("502.gcc_r").unwrap(), // 5 inputs
            cpu2017::app("505.mcf_r").unwrap(), // 1 input
        ];
        let records = characterize_suite(&apps, InputSize::Ref, &config).unwrap();
        let ipc: Metric<'_> = ("IPC", &|r: &CharRecord| r.ipc);
        let rows = compare_rows(&[], &records, &[ipc]);
        let int_row = rows.iter().find(|r| r.label() == "CPU17 int").unwrap();
        // Mean of two app-level IPCs, not six pair-level ones.
        let gcc_mean = records
            .iter()
            .filter(|r| r.app == "502.gcc_r")
            .map(|r| r.ipc)
            .sum::<f64>()
            / 5.0;
        let mcf = records.iter().find(|r| r.app == "505.mcf_r").unwrap().ipc;
        assert!((int_row.cells[0].mean - (gcc_mean + mcf) / 2.0).abs() < 1e-9);
    }
}
