//! Phase detection and simulation-point selection — the paper's future-work
//! section, implemented.
//!
//! The paper notes that even the subsetted CPU2017 suite may be too slow to
//! simulate and proposes phase analysis as the next step. This module
//! implements the SimPoint-style recipe on top of the existing substrates:
//!
//! 1. execute a workload in fixed-size instruction **windows**, collecting a
//!    perf-counter vector per window (the engine's state carries across
//!    windows, so rates are steady within phases);
//! 2. standardize the window vectors and **cluster** them with k-medoids,
//!    choosing the phase count by silhouette;
//! 3. report each cluster's **medoid window as a simulation point** with a
//!    weight equal to its cluster's share of the run.
//!
//! Simulating only the points and weighting their metrics reconstructs the
//! whole-program numbers at a fraction of the simulated instructions.

use stat_analysis::distance::Metric;
use stat_analysis::kmedoids::k_medoids;
use stat_analysis::matrix::Matrix;
use stat_analysis::silhouette::mean_silhouette;
use stat_analysis::standardize::Standardizer;
use stat_analysis::StatsError;
use uarch_sim::config::SystemConfig;
use uarch_sim::counters::{Event, PerfSession};
use uarch_sim::engine::{Engine, WorkloadHints};
use uarch_sim::exec::{from_iter, ExecPlan};
use uarch_sim::microop::MicroOp;

/// One selected simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationPoint {
    /// Index of the representative window.
    pub window: usize,
    /// Fraction of all windows its phase covers.
    pub weight: f64,
    /// The phase (cluster) id.
    pub phase: usize,
}

/// Result of a phase analysis.
#[derive(Debug, Clone)]
pub struct PhaseAnalysis {
    /// Per-window counter files, in execution order.
    pub windows: Vec<PerfSession>,
    /// Phase label per window.
    pub labels: Vec<usize>,
    /// Number of detected phases.
    pub n_phases: usize,
    /// Mean silhouette of the chosen phase count.
    pub silhouette: f64,
    /// The chosen simulation points, one per phase.
    pub points: Vec<SimulationPoint>,
}

impl PhaseAnalysis {
    /// Whole-run IPC measured over every window (ground truth).
    pub fn full_ipc(&self) -> f64 {
        let inst: u64 = self
            .windows
            .iter()
            .map(|w| w.count(Event::InstRetiredAny))
            .sum();
        let cycles: u64 = self
            .windows
            .iter()
            .map(|w| w.count(Event::CpuClkUnhaltedRefTsc))
            .sum();
        if cycles == 0 {
            0.0
        } else {
            inst as f64 / cycles as f64
        }
    }

    /// IPC estimated from the simulation points only, weighted by phase
    /// share — what a phase-based methodology would report.
    pub fn estimated_ipc(&self) -> f64 {
        let mut cpi = 0.0;
        for p in &self.points {
            let w = &self.windows[p.window];
            let ipc = w.ipc();
            if ipc > 0.0 {
                cpi += p.weight / ipc;
            }
        }
        if cpi > 0.0 {
            1.0 / cpi
        } else {
            0.0
        }
    }

    /// Fraction of windows that would need detailed simulation.
    pub fn simulation_fraction(&self) -> f64 {
        self.points.len() as f64 / self.windows.len().max(1) as f64
    }
}

/// Per-window characteristic vector used for phase clustering: the
/// microarchitecture-independent mix plus the observed service mix.
fn window_vector(w: &PerfSession) -> Vec<f64> {
    vec![
        w.load_fraction(),
        w.store_fraction(),
        w.branch_fraction(),
        w.l1_miss_rate(),
        w.l2_miss_rate(),
        w.l3_miss_rate(),
        w.mispredict_rate(),
    ]
}

/// Runs `ops` through a fresh engine in `n_windows` equal windows and
/// detects phases, trying every phase count in `2..=max_phases` and keeping
/// the best silhouette (falling back to one phase when nothing separates).
///
/// # Errors
///
/// Returns a [`StatsError`] when there are fewer than two windows or the
/// clustering kernels fail.
pub fn analyze_phases<I>(
    ops: I,
    config: &SystemConfig,
    hints: &WorkloadHints,
    n_windows: usize,
    max_phases: usize,
) -> Result<PhaseAnalysis, StatsError>
where
    I: IntoIterator<Item = MicroOp>,
{
    if n_windows < 2 {
        return Err(StatsError::InvalidArgument {
            what: "need at least two windows",
        });
    }
    let all: Vec<MicroOp> = ops.into_iter().collect();
    if all.len() < n_windows {
        return Err(StatsError::InvalidArgument {
            what: "trace shorter than window count",
        });
    }
    // One window of silent warmup removes the cold-start transient, which
    // would otherwise register as a spurious "initialization phase" even in
    // stationary workloads.
    let window_len = all.len() / (n_windows + 1);
    let plan = ExecPlan::new().hints(*hints);
    let mut engine = Engine::new(config);
    let mut chunks = all.chunks(window_len);
    if let Some(warm) = chunks.next() {
        let _ = engine.execute(from_iter(warm.iter().copied()), &plan);
    }
    let mut windows = Vec::with_capacity(n_windows);
    for chunk in chunks.take(n_windows) {
        windows.push(engine.execute(from_iter(chunk.iter().copied()), &plan));
    }

    let vectors: Vec<Vec<f64>> = windows.iter().map(window_vector).collect();
    let data = Matrix::from_rows(&vectors)?;
    let z = Standardizer::fit_transform(&data)?;
    let rows: Vec<Vec<f64>> = z.iter_rows().map(|r| r.to_vec()).collect();

    let mut best: Option<(usize, f64, Vec<usize>, Vec<usize>)> = None;
    for k in 2..=max_phases.min(n_windows) {
        let result = k_medoids(&rows, k, Metric::Euclidean)?;
        let score = mean_silhouette(&rows, &result.labels, Metric::Euclidean).unwrap_or(-1.0);
        if best.as_ref().map(|(_, s, _, _)| score > *s).unwrap_or(true) {
            best = Some((k, score, result.labels, result.medoids));
        }
    }
    let (n_phases, silhouette, labels, medoids) =
        best.expect("max_phases >= 2 guarantees a candidate");

    // Weak separation means the run is effectively single-phase.
    if silhouette < 0.4 {
        let points = vec![SimulationPoint {
            window: 0,
            weight: 1.0,
            phase: 0,
        }];
        return Ok(PhaseAnalysis {
            windows,
            labels: vec![0; n_windows],
            n_phases: 1,
            silhouette,
            points,
        });
    }

    let mut counts = vec![0usize; n_phases];
    for &l in &labels {
        counts[l] += 1;
    }
    let points = medoids
        .iter()
        .map(|&m| SimulationPoint {
            window: m,
            weight: counts[labels[m]] as f64 / n_windows as f64,
            phase: labels[m],
        })
        .collect();

    Ok(PhaseAnalysis {
        windows,
        labels,
        n_phases,
        silhouette,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_synth::generator::TraceGenerator;
    use workload_synth::phases::demo_three_phase;
    use workload_synth::profile::Behavior;

    fn config() -> SystemConfig {
        SystemConfig::haswell_e5_2650l_v3()
    }

    #[test]
    fn detects_three_phases_in_demo_workload() {
        let w = demo_three_phase();
        let config = config();
        let trace: Vec<_> = w.trace(&config, 3, 150_000).collect();
        let analysis = analyze_phases(trace, &config, &WorkloadHints::default(), 30, 5).unwrap();
        // Three true phases plus up to two transition-window clusters.
        assert!(
            (2..=5).contains(&analysis.n_phases),
            "expected multi-phase, got {} (silhouette {})",
            analysis.n_phases,
            analysis.silhouette
        );
        assert!(analysis.silhouette > 0.5);
        // Weights sum to 1.
        let total: f64 = analysis.points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_workload_is_single_phase() {
        let config = config();
        let trace =
            TraceGenerator::new(&Behavior::default(), &config, 5, 100_000).expect("valid behavior");
        let analysis = analyze_phases(trace, &config, &WorkloadHints::default(), 20, 5).unwrap();
        assert_eq!(analysis.n_phases, 1, "silhouette {}", analysis.silhouette);
        assert_eq!(analysis.points.len(), 1);
        assert!((analysis.points[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimated_ipc_tracks_full_ipc() {
        let w = demo_three_phase();
        let config = config();
        let trace: Vec<_> = w.trace(&config, 7, 150_000).collect();
        let analysis = analyze_phases(trace, &config, &WorkloadHints::default(), 30, 5).unwrap();
        let full = analysis.full_ipc();
        let est = analysis.estimated_ipc();
        let rel = (est - full).abs() / full;
        assert!(rel < 0.25, "estimated {est} vs full {full}");
        assert!(analysis.simulation_fraction() < 0.5);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let config = config();
        let trace: Vec<_> = TraceGenerator::new(&Behavior::default(), &config, 1, 10)
            .expect("valid behavior")
            .collect();
        assert!(analyze_phases(trace.clone(), &config, &WorkloadHints::default(), 1, 3).is_err());
        assert!(analyze_phases(trace, &config, &WorkloadHints::default(), 50, 3).is_err());
    }
}
