//! Content-addressed caching of characterization results.
//!
//! A characterization campaign is deterministic: the [`CharRecord`] of one
//! application–input pair is a pure function of the pair's identity and
//! behaviour, the simulated [`SystemConfig`], the [`TraceScale`], and the
//! record schema itself. This module derives a stable 128-bit [`Key`] from
//! exactly those inputs and persists each record in a [`simstore::Store`],
//! so repeated runs — the `reproduce` binary, ablations, sensitivity sweeps,
//! tests — replay from disk instead of re-simulating. Changing *any* key
//! ingredient (a profile field, a cache size, the trace budget, the record
//! layout) changes the key and transparently invalidates only the affected
//! records; nothing is ever served stale.

use std::io;
use std::path::Path;
use std::time::Instant;

use simstore::{CacheStats, CodecError, Decoder, Encoder, Key, StableHash, StableHasher, Store};
use uarch_sim::config::{CacheConfig, SystemConfig};
use uarch_sim::counters::{Event, PerfSession};
use uarch_sim::replacement::Policy;
use workload_synth::profile::{AppInputPair, InputSize, Suite};

use crate::characterize::{characterize_pair, CharRecord, RunConfig};

/// Version of the persisted [`CharRecord`] payload layout. Bump whenever
/// [`encode_record`] changes (or any encoded field changes meaning): the
/// version is hashed into every key, so old-layout records are simply never
/// addressed again — no migration, no misdecoding.
pub const SCHEMA_VERSION: u32 = 1;

fn policy_code(policy: Policy) -> u8 {
    match policy {
        Policy::Lru => 0,
        Policy::Fifo => 1,
        Policy::Random => 2,
        Policy::TreePlru => 3,
        Policy::Srrip => 4,
        // `Policy` is non-exhaustive; a future variant needs its own stable
        // code here before it can be part of a cache key.
        other => unreachable!("unmapped replacement policy {other:?}"),
    }
}

fn hash_cache_config(h: &mut StableHasher, c: &CacheConfig) {
    h.write_usize(c.size_bytes);
    h.write_usize(c.ways);
    h.write_usize(c.line_bytes);
    h.write_u8(policy_code(c.policy));
}

/// Feeds every result-affecting field of a [`SystemConfig`] into `h`.
///
/// Lives here (not as a `StableHash` impl) because `SystemConfig` belongs to
/// `uarch-sim`, which does not depend on `simstore`; the characterization
/// layer is where machine identity meets cache keys.
pub fn hash_system(h: &mut StableHasher, system: &SystemConfig) {
    h.write_str(&system.name);
    hash_cache_config(h, &system.l1i);
    hash_cache_config(h, &system.l1d);
    hash_cache_config(h, &system.l2);
    hash_cache_config(h, &system.l3);
    h.write_f64(system.clock_ghz);
    h.write_usize(system.issue_width);
    h.write_u64(system.mispredict_penalty);
    h.write_u64(system.l2_latency);
    h.write_u64(system.l3_latency);
    h.write_u64(system.memory_latency);
    h.write_usize(system.cores);
}

fn pair_key_versioned(pair: &AppInputPair<'_>, config: &RunConfig, schema: u32) -> Key {
    let mut h = StableHasher::new();
    h.write_u32(schema);
    pair.stable_hash(&mut h);
    hash_system(&mut h, &config.system);
    config.scale.stable_hash(&mut h);
    h.finish()
}

/// The content key addressing `pair`'s record under `config`.
pub fn pair_key(pair: &AppInputPair<'_>, config: &RunConfig) -> Key {
    pair_key_versioned(pair, config, SCHEMA_VERSION)
}

fn suite_code(suite: Suite) -> u8 {
    match suite {
        Suite::RateInt => 0,
        Suite::RateFp => 1,
        Suite::SpeedInt => 2,
        Suite::SpeedFp => 3,
    }
}

fn suite_from(code: u8) -> Result<Suite, CodecError> {
    match code {
        0 => Ok(Suite::RateInt),
        1 => Ok(Suite::RateFp),
        2 => Ok(Suite::SpeedInt),
        3 => Ok(Suite::SpeedFp),
        _ => Err(CodecError::BadMagic),
    }
}

fn size_code(size: InputSize) -> u8 {
    match size {
        InputSize::Test => 0,
        InputSize::Train => 1,
        InputSize::Ref => 2,
    }
}

fn size_from(code: u8) -> Result<InputSize, CodecError> {
    match code {
        0 => Ok(InputSize::Test),
        1 => Ok(InputSize::Train),
        2 => Ok(InputSize::Ref),
        _ => Err(CodecError::BadMagic),
    }
}

/// Serializes a record to the `SCHEMA_VERSION` payload layout.
pub fn encode_record(r: &CharRecord) -> Vec<u8> {
    let mut e = Encoder::with_capacity(256);
    e.put_str(&r.id);
    e.put_str(&r.app);
    e.put_str(&r.input);
    e.put_u8(suite_code(r.suite));
    e.put_u8(size_code(r.size));
    for event in Event::ALL {
        e.put_u64(r.session.count(event));
    }
    e.put_u64(r.sim_ops);
    e.put_f64(r.instructions_billions);
    e.put_f64(r.ipc);
    e.put_f64(r.load_pct);
    e.put_f64(r.store_pct);
    e.put_f64(r.branch_pct);
    e.put_f64(r.l1_miss_pct);
    e.put_f64(r.l2_miss_pct);
    e.put_f64(r.l3_miss_pct);
    e.put_f64(r.mispredict_pct);
    e.put_f64(r.rss_gib);
    e.put_f64(r.vsz_gib);
    e.put_f64(r.cpi_base);
    e.put_f64(r.cpi_branch);
    e.put_f64(r.cpi_memory);
    e.put_f64(r.cpi_frontend);
    e.put_f64(r.sim_seconds);
    e.put_f64(r.projected_seconds);
    e.into_bytes()
}

/// Deserializes a `SCHEMA_VERSION` payload produced by [`encode_record`].
///
/// # Errors
///
/// Any [`CodecError`] on truncated, trailing, or invalid-discriminant bytes.
/// `f64` fields round-trip bit-exactly (the codec moves raw bits), so a
/// decoded record compares equal to the encoded one.
pub fn decode_record(bytes: &[u8]) -> Result<CharRecord, CodecError> {
    let mut d = Decoder::new(bytes);
    let id = d.take_str()?;
    let app = d.take_str()?;
    let input = d.take_str()?;
    let suite = suite_from(d.take_u8()?)?;
    let size = size_from(d.take_u8()?)?;
    let mut session = PerfSession::new();
    for event in Event::ALL {
        session.set(event, d.take_u64()?);
    }
    let record = CharRecord {
        id,
        app,
        input,
        suite,
        size,
        session,
        sim_ops: d.take_u64()?,
        instructions_billions: d.take_f64()?,
        ipc: d.take_f64()?,
        load_pct: d.take_f64()?,
        store_pct: d.take_f64()?,
        branch_pct: d.take_f64()?,
        l1_miss_pct: d.take_f64()?,
        l2_miss_pct: d.take_f64()?,
        l3_miss_pct: d.take_f64()?,
        mispredict_pct: d.take_f64()?,
        rss_gib: d.take_f64()?,
        vsz_gib: d.take_f64()?,
        cpi_base: d.take_f64()?,
        cpi_branch: d.take_f64()?,
        cpi_memory: d.take_f64()?,
        cpi_frontend: d.take_f64()?,
        sim_seconds: d.take_f64()?,
        projected_seconds: d.take_f64()?,
    };
    d.finish()?;
    Ok(record)
}

/// A campaign's view of the result store: an optional [`Store`] plus shared
/// [`CacheStats`]. All methods take `&self` and are thread-safe, so one
/// context serves every scheduler worker by reference.
#[derive(Debug)]
pub struct CacheContext {
    store: Option<Store>,
    /// Hit/miss/byte accounting across every lookup through this context.
    pub stats: CacheStats,
}

impl CacheContext {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Any filesystem error opening the store.
    pub fn open<P: AsRef<Path>>(root: P) -> io::Result<CacheContext> {
        Ok(CacheContext {
            store: Some(Store::open(root)?),
            stats: CacheStats::new(),
        })
    }

    /// A context with no backing store: every lookup misses, nothing is
    /// written. Lets callers keep one code path for `--no-cache` runs.
    pub fn disabled() -> CacheContext {
        CacheContext {
            store: None,
            stats: CacheStats::new(),
        }
    }

    /// True when a backing store is attached.
    pub fn is_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// The backing store, if enabled.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Fetches and decodes the record under `key`, counting a hit.
    /// Undecodable payloads read as a miss (the envelope layer already
    /// treats corruption the same way).
    pub fn lookup(&self, key: Key) -> Option<CharRecord> {
        let bytes = self.store.as_ref()?.get(key)?;
        match decode_record(&bytes) {
            Ok(record) => {
                self.stats.record_hit(bytes.len());
                Some(record)
            }
            Err(_) => None,
        }
    }

    /// Encodes and persists `record` under `key`. Write errors are swallowed:
    /// a read-only or full cache directory degrades to recomputation on the
    /// next run, never to a failed campaign.
    pub fn insert(&self, key: Key, record: &CharRecord) {
        if let Some(store) = &self.store {
            let payload = encode_record(record);
            if store.put(key, &payload).is_ok() {
                self.stats.record_store(payload.len());
            }
        }
    }
}

/// Cache-first characterization of one pair: serve the stored record when
/// present, otherwise simulate, persist, and account the miss cost.
///
/// Runs with interval sampling enabled bypass the cache entirely: the
/// on-disk codec persists counter totals only, so a cached record could not
/// carry the requested timeline (and a timeline-bearing record must not
/// poison the unsampled cache).
///
/// # Errors
///
/// Propagates [`crate::error::Error`] from the underlying characterization.
pub fn characterize_pair_cached(
    pair: &AppInputPair<'_>,
    config: &RunConfig,
    cache: &CacheContext,
) -> crate::error::Result<CharRecord> {
    if config.sampler.is_some() {
        return characterize_pair(pair, config);
    }
    let key = pair_key(pair, config);
    let mut probe = simtrace::span("stage/cache-probe");
    if probe.is_recording() {
        probe.arg("pair", pair.id());
    }
    if let Some(record) = cache.lookup(key) {
        probe.arg("hit", true);
        return Ok(record);
    }
    probe.arg("hit", false);
    drop(probe);
    let started = Instant::now();
    let record = characterize_pair(pair, config)?;
    cache.stats.record_miss(started.elapsed());
    cache.insert(key, &record);
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_synth::cpu2017;
    use workload_synth::generator::TraceScale;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("workchar-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record() -> CharRecord {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        characterize_pair(pair, &RunConfig::quick()).unwrap()
    }

    #[test]
    fn record_codec_round_trips_exactly() {
        let record = sample_record();
        let decoded = decode_record(&encode_record(&record)).unwrap();
        assert_eq!(
            record, decoded,
            "decode must be bit-exact, sessions included"
        );
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let bytes = encode_record(&sample_record());
        assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(
            decode_record(&extended).is_err(),
            "trailing bytes must be rejected"
        );
    }

    #[test]
    fn key_invalidates_on_system_change() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let base = RunConfig::quick();
        let mut slower = base.clone();
        slower.system.memory_latency += 100;
        let mut bigger_l3 = base.clone();
        bigger_l3.system = bigger_l3.system.with_l3_size(60 * 1024 * 1024);
        assert_ne!(pair_key(pair, &base), pair_key(pair, &slower));
        assert_ne!(pair_key(pair, &base), pair_key(pair, &bigger_l3));
        assert_eq!(pair_key(pair, &base), pair_key(pair, &base.clone()));
    }

    #[test]
    fn key_invalidates_on_scale_change() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let base = RunConfig::quick();
        let mut rescaled = base.clone();
        rescaled.scale = TraceScale::default();
        assert_ne!(pair_key(pair, &base), pair_key(pair, &rescaled));
    }

    #[test]
    fn key_invalidates_on_schema_bump() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let config = RunConfig::quick();
        assert_ne!(
            pair_key_versioned(pair, &config, SCHEMA_VERSION),
            pair_key_versioned(pair, &config, SCHEMA_VERSION + 1),
        );
    }

    #[test]
    fn cached_run_matches_uncached_and_hits_second_time() {
        let root = tmp_root("hit");
        let cache = CacheContext::open(&root).unwrap();
        let app = cpu2017::app("541.leela_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let config = RunConfig::quick();

        let cold = characterize_pair_cached(pair, &config, &cache).unwrap();
        assert_eq!(
            cold,
            characterize_pair(pair, &config).unwrap(),
            "cache must not alter results"
        );
        let warm = characterize_pair_cached(pair, &config, &cache).unwrap();
        assert_eq!(cold, warm);
        let snap = cache.stats.snapshot();
        assert_eq!((snap.misses, snap.hits, snap.stores), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn warm_hits_survive_reopen() {
        let root = tmp_root("reopen");
        let app = cpu2017::app("519.lbm_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let config = RunConfig::quick();
        let cold = {
            let cache = CacheContext::open(&root).unwrap();
            characterize_pair_cached(pair, &config, &cache).unwrap()
        };
        let cache = CacheContext::open(&root).unwrap();
        let warm = characterize_pair_cached(pair, &config, &cache).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(
            cache.stats.snapshot().hits,
            1,
            "reopened store must serve the record"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disabled_context_recomputes_every_time() {
        let cache = CacheContext::disabled();
        assert!(!cache.is_enabled());
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let config = RunConfig::quick();
        let a = characterize_pair_cached(pair, &config, &cache).unwrap();
        let b = characterize_pair_cached(pair, &config, &cache).unwrap();
        assert_eq!(a, b);
        let snap = cache.stats.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.stores), (0, 2, 0));
    }
}
