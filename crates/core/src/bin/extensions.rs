//! Regenerates the beyond-the-paper artifacts: design-choice ablations and
//! the phase-behaviour analysis the paper proposes as future work.
//!
//! ```text
//! extensions [--results DIR] [--no-cache] [--cache-dir DIR]
//!            [--lint] [--deny-warnings] [--timeline] [--simpoint]
//!            [--events FILE] [--trace] [--race] [--profile]
//!            [--profile-interval N] [--serve-metrics ADDR]
//! ```
//!
//! `--lint` statically checks the rate-suite profiles and the system
//! configuration before any simulation starts (the `simcheck` rules);
//! `--deny-warnings` makes lint warnings refuse the run too.
//!
//! `--simpoint` additionally runs the representative-interval campaign over
//! the rate-suite ref pairs, persisting per-pair speedup-vs-error records
//! content-addressed under `<results>/simpoints/` (see `simpoint-report`).
//!
//! Characterization-backed tables share the `reproduce` binary's result
//! cache (default `results/cache`): the rate-suite records feeding the
//! clustering ablations, the per-policy replacement rows, and the sweeps'
//! baseline point all replay from the store when present.
//!
//! Observability mirrors `reproduce`: `--timeline` samples per-pair counter
//! timelines for the rate-suite characterization (artifacts under
//! `<results>/timelines/`), `--events FILE` streams perfmon JSONL, `--trace`
//! exports a causal span trace of the run under `<results>/traces/`
//! (Perfetto-loadable JSON plus the binary format `trace-report` reads),
//! `--race` records sync events and audits the whole run with the
//! vector-clock happens-before checker (`X`-rules), `--profile` records an
//! op-clocked statistical profile (artifacts under `<results>/profiles/`,
//! cache bypassed so engine work exists to sample), and
//! a per-stage summary table prints to stderr on exit. Process metrics are
//! always on — `--serve-metrics ADDR` scrapes them live, a final snapshot
//! lands in `<results>/metrics.json`, and a panic dumps the flight
//! recorder to `<results>/flight-recorder.json`. Errors render on stderr
//! and exit nonzero.

use std::io::Write;
use std::process::ExitCode;

use perfmon::Recorder;
use uarch_sim::engine::WorkloadHints;
use uarch_sim::timeline::SamplerConfig;
use workchar::ablation;
use workchar::cache::CacheContext;
use workchar::characterize::{characterize_suite_with, RunConfig};
use workchar::cli::{ArgStream, PipelineFlags};
use workchar::error::{Error, Result};
use workchar::observe::{write_timeline_artifacts, PipelineSpan};
use workchar::phase::analyze_phases;
use workload_synth::cpu2017;
use workload_synth::phases::demo_three_phase;
use workload_synth::profile::InputSize;

fn parse_args() -> Result<PipelineFlags> {
    let mut opts = PipelineFlags::new();
    let mut args = ArgStream::from_env();
    while let Some(arg) = args.next() {
        if opts.accept(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: extensions [--results DIR] [--no-cache] [--cache-dir DIR] \
                     [--lint] [--deny-warnings] [--timeline] [--simpoint] \
                     [--events FILE] [--trace] [--race] [--profile] \
                     [--profile-interval N] [--serve-metrics ADDR]"
                );
                print!("{}", PipelineFlags::usage_lines());
                std::process::exit(0);
            }
            other => {
                return Err(Error::Usage(format!("unknown argument '{other}'")));
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match real_main(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main(opts: PipelineFlags) -> Result<()> {
    simmetrics::enable();
    workchar::telemetry::register_pipeline_metrics();
    simmetrics::flight::install_dump(&opts.results_dir.join("flight-recorder.json"));
    let _metrics_server = match &opts.serve_metrics {
        Some(addr) => {
            let server = simmetrics::http::serve(addr)?;
            eprintln!("serving metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };

    let recorder = match &opts.events {
        Some(path) => Recorder::to_path(path)?,
        None => Recorder::in_memory(),
    };
    let trace_root = if opts.trace {
        simtrace::enable();
        Some(simtrace::root("run/extensions"))
    } else {
        None
    };
    if opts.race {
        simrace::enable();
        eprintln!("race auditing on: recording sync events for a happens-before check");
    }
    let prof_root = if opts.profile {
        simprof::enable_with_interval(opts.profile_interval);
        eprintln!(
            "profiling on: one sample per {} engine ops, artifacts under {}",
            opts.profile_interval,
            opts.results_dir.join("profiles").display()
        );
        Some(simprof::frame("run/extensions"))
    } else {
        None
    };
    std::fs::create_dir_all(&opts.results_dir)?;
    let mut all = String::new();
    let mut config = RunConfig::default();
    if opts.timeline {
        config = config.with_sampler(SamplerConfig::default());
    }
    // A cache-hit run executes no engine ops, leaving nothing to sample,
    // so profiled runs bypass the cache entirely.
    let cache = if opts.no_cache || opts.profile {
        None
    } else {
        match CacheContext::open(&opts.cache_dir) {
            Ok(ctx) => Some(ctx),
            Err(e) => {
                eprintln!(
                    "warning: cannot open cache at {}: {e}; running uncached",
                    opts.cache_dir.display()
                );
                None
            }
        }
    };

    eprintln!("characterizing CPU2017 rate ref pairs for clustering ablations...");
    let rate_apps: Vec<_> = cpu2017::suite()
        .into_iter()
        .filter(|a| !a.suite.is_speed())
        .collect();
    if opts.lint {
        let report = workchar::lint::check_campaign(&[&rate_apps], &config);
        if !report.is_empty() {
            eprint!("{}", report.to_table());
        }
        if report.failed(opts.deny_warnings) {
            return Err(report.into());
        }
        eprintln!("lint: profiles and config — {}", report.summary());
    }
    let mut span = PipelineSpan::open(&recorder, "characterize-rate-ref");
    let records = characterize_suite_with(&rate_apps, InputSize::Ref, &config, cache.as_ref())?;
    span.record("records", records.len());
    if let Some(ctx) = &cache {
        let snap = ctx.stats.snapshot();
        span.record("cache_hits", snap.hits);
        span.record("cache_misses", snap.misses);
    }
    span.finish();
    let refs: Vec<&workchar::characterize::CharRecord> = records.iter().collect();

    let mut span = PipelineSpan::open(&recorder, "ablations");
    for table in [
        ablation::linkage_ablation(&refs),
        ablation::subsetter_ablation(&refs),
        ablation::predictor_ablation(&config.system, &config.scale),
        ablation::replacement_ablation_with(&config.scale, cache.as_ref()),
        ablation::prefetcher_ablation(),
        ablation::cpi_stack_table(&refs),
    ] {
        let text = table.render_ascii();
        println!("{text}");
        all.push_str(&text);
        all.push('\n');
    }
    span.record("tables", 6u64);
    span.finish();

    eprintln!("sweeping DRAM latency and issue width...");
    let sweep_apps: Vec<_> = ["505.mcf_r", "549.fotonik3d_r", "525.x264_r", "557.xz_r"]
        .iter()
        .map(|n| cpu2017::app(n).expect("known app"))
        .collect();
    // The 220-cycle and 4-wide points are the baseline machine: serve them
    // from the records characterized above instead of replaying.
    let span = PipelineSpan::open(&recorder, "sensitivity-sweeps");
    for sweep in [
        workchar::sensitivity::memory_latency_sweep_with(
            &sweep_apps,
            &config,
            &[120, 220, 320, 500],
            Some(&records),
        ),
        workchar::sensitivity::issue_width_sweep_with(
            &sweep_apps,
            &config,
            &[1, 2, 4, 6],
            Some(&records),
        ),
    ] {
        let text = sweep.table().render_ascii();
        println!("{text}");
        all.push_str(&text);
        all.push('\n');
    }
    span.finish();
    if let Some(ctx) = &cache {
        let snap = ctx.stats.snapshot();
        eprintln!("cache: {snap}");
        recorder.stat(
            "cache",
            &[
                ("hits", snap.hits.into()),
                ("misses", snap.misses.into()),
                ("hit_rate", snap.hit_rate().into()),
                ("bytes_read", snap.bytes_read.into()),
                ("bytes_written", snap.bytes_written.into()),
            ],
        );
    }

    if opts.timeline {
        let dir = opts.results_dir.join("timelines");
        let written = write_timeline_artifacts(&records, &dir)?;
        recorder.event(
            "timeline-artifacts",
            &[("pairs", perfmon::FieldValue::U64(written as u64))],
        );
        eprintln!("wrote {written} pair timelines under {}", dir.display());
    }

    eprintln!("running phase analysis on the three-phase demo workload...");
    let workload = demo_three_phase();
    let trace: Vec<_> = workload.trace(&config.system, 42, 600_000).collect();
    let mut span = PipelineSpan::open(&recorder, "phase-analysis");
    match analyze_phases(trace, &config.system, &WorkloadHints::default(), 40, 6) {
        Ok(analysis) => {
            span.record("phases", analysis.n_phases);
            let mut text = format!(
                "Phase analysis of '{}': {} phases (silhouette {:.3})\n",
                workload.name, analysis.n_phases, analysis.silhouette
            );
            for p in &analysis.points {
                text.push_str(&format!(
                    "  simulation point: window {} (phase {}, weight {:.2})\n",
                    p.window, p.phase, p.weight
                ));
            }
            text.push_str(&format!(
                "  full-run IPC {:.3} vs simulation-point estimate {:.3} \
                 using {:.0}% of the windows\n",
                analysis.full_ipc(),
                analysis.estimated_ipc(),
                analysis.simulation_fraction() * 100.0
            ));
            println!("{text}");
            all.push_str(&text);
        }
        Err(e) => eprintln!("phase analysis failed: {e}"),
    }
    span.finish();

    if opts.simpoint {
        let mut span = PipelineSpan::open(&recorder, "simpoint-campaign");
        let dir = opts.results_dir.join("simpoints");
        let store = simstore::Store::open(&dir)?;
        let sp = simpoint::SimpointConfig::default();
        eprintln!(
            "simpoint: representative-interval analysis of the rate ref pairs \
             (records under {})...",
            dir.display()
        );
        let sp_records = workchar::simpoints::run_roster(
            &rate_apps,
            InputSize::Ref,
            &config,
            &sp,
            Some(&store),
        )?;
        span.record("pairs", sp_records.len());
        let text = workchar::simpoints::summary_table(&sp_records).render_ascii();
        println!("{text}");
        all.push_str(&text);
        all.push('\n');
        span.finish();
    }

    let path = opts.results_dir.join("extensions.txt");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(all.as_bytes())) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    let metrics_path = opts.results_dir.join("metrics.json");
    let rendered = simmetrics::json::render(&simmetrics::snapshot());
    match std::fs::File::create(&metrics_path).and_then(|mut f| f.write_all(rendered.as_bytes())) {
        Ok(()) => {}
        Err(e) => eprintln!("warning: cannot write {}: {e}", metrics_path.display()),
    }
    if let Some(root) = trace_root {
        root.finish();
        let spans = simtrace::drain();
        let dir = opts.results_dir.join("traces");
        let (json_path, _bin_path) = simtrace::export(&dir, "extensions", &spans)?;
        eprintln!(
            "wrote {} trace spans to {} (load in Perfetto, or run trace-report)",
            spans.len(),
            json_path.display()
        );
    }
    if let Some(root) = prof_root {
        drop(root);
        simprof::disable();
        let profile = simprof::drain();
        let dir = opts.results_dir.join("profiles");
        let paths = simprof::export(&dir, "extensions", &profile)?;
        eprintln!(
            "wrote {} profile samples ({} ops) to {} (run prof-report, or open {})",
            profile.samples.len(),
            profile.total_weight(),
            paths.prof.display(),
            paths.svg.display()
        );
    }
    if opts.race {
        simrace::disable();
        let events = simrace::drain();
        let report = simrace::checker::check_events("run/extensions", &events);
        eprintln!(
            "race audit: {} sync events — {}",
            events.len(),
            report.summary()
        );
        if !report.is_empty() {
            eprint!("{}", report.to_table());
        }
        if report.failed(opts.deny_warnings) {
            return Err(report.into());
        }
    }
    eprint!("{}", recorder.render_summary());
    Ok(())
}
