//! Regenerates the beyond-the-paper artifacts: design-choice ablations and
//! the phase-behaviour analysis the paper proposes as future work.
//!
//! ```text
//! extensions [--results DIR] [--no-cache] [--cache-dir DIR]
//! ```
//!
//! Characterization-backed tables share the `reproduce` binary's result
//! cache (default `results/cache`): the rate-suite records feeding the
//! clustering ablations, the per-policy replacement rows, and the sweeps'
//! baseline point all replay from the store when present.

use std::io::Write;
use std::path::PathBuf;

use uarch_sim::engine::WorkloadHints;
use workchar::ablation;
use workchar::cache::CacheContext;
use workchar::characterize::{characterize_suite_with, RunConfig};
use workchar::phase::analyze_phases;
use workload_synth::cpu2017;
use workload_synth::phases::demo_three_phase;
use workload_synth::profile::InputSize;

fn main() {
    let mut results_dir = PathBuf::from("results");
    let mut cache_dir = PathBuf::from("results/cache");
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--results" => {
                if let Some(dir) = args.next() {
                    results_dir = PathBuf::from(dir);
                }
            }
            "--cache-dir" => {
                if let Some(dir) = args.next() {
                    cache_dir = PathBuf::from(dir);
                }
            }
            "--no-cache" => no_cache = true,
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let _ = std::fs::create_dir_all(&results_dir);
    let mut all = String::new();
    let config = RunConfig::default();
    let cache = if no_cache {
        None
    } else {
        match CacheContext::open(&cache_dir) {
            Ok(ctx) => Some(ctx),
            Err(e) => {
                eprintln!(
                    "warning: cannot open cache at {}: {e}; running uncached",
                    cache_dir.display()
                );
                None
            }
        }
    };

    eprintln!("characterizing CPU2017 rate ref pairs for clustering ablations...");
    let rate_apps: Vec<_> = cpu2017::suite()
        .into_iter()
        .filter(|a| !a.suite.is_speed())
        .collect();
    let records = characterize_suite_with(&rate_apps, InputSize::Ref, &config, cache.as_ref());
    let refs: Vec<&workchar::characterize::CharRecord> = records.iter().collect();

    for table in [
        ablation::linkage_ablation(&refs),
        ablation::subsetter_ablation(&refs),
        ablation::predictor_ablation(&config.system, &config.scale),
        ablation::replacement_ablation_with(&config.scale, cache.as_ref()),
        ablation::prefetcher_ablation(),
        ablation::cpi_stack_table(&refs),
    ] {
        let text = table.render_ascii();
        println!("{text}");
        all.push_str(&text);
        all.push('\n');
    }

    eprintln!("sweeping DRAM latency and issue width...");
    let sweep_apps: Vec<_> = ["505.mcf_r", "549.fotonik3d_r", "525.x264_r", "557.xz_r"]
        .iter()
        .map(|n| cpu2017::app(n).expect("known app"))
        .collect();
    // The 220-cycle and 4-wide points are the baseline machine: serve them
    // from the records characterized above instead of replaying.
    for sweep in [
        workchar::sensitivity::memory_latency_sweep_with(
            &sweep_apps,
            &config,
            &[120, 220, 320, 500],
            Some(&records),
        ),
        workchar::sensitivity::issue_width_sweep_with(
            &sweep_apps,
            &config,
            &[1, 2, 4, 6],
            Some(&records),
        ),
    ] {
        let text = sweep.table().render_ascii();
        println!("{text}");
        all.push_str(&text);
        all.push('\n');
    }
    if let Some(ctx) = &cache {
        eprintln!("cache: {}", ctx.stats.snapshot());
    }

    eprintln!("running phase analysis on the three-phase demo workload...");
    let workload = demo_three_phase();
    let trace: Vec<_> = workload.trace(&config.system, 42, 600_000).collect();
    match analyze_phases(trace, &config.system, &WorkloadHints::default(), 40, 6) {
        Ok(analysis) => {
            let mut text = format!(
                "Phase analysis of '{}': {} phases (silhouette {:.3})\n",
                workload.name, analysis.n_phases, analysis.silhouette
            );
            for p in &analysis.points {
                text.push_str(&format!(
                    "  simulation point: window {} (phase {}, weight {:.2})\n",
                    p.window, p.phase, p.weight
                ));
            }
            text.push_str(&format!(
                "  full-run IPC {:.3} vs simulation-point estimate {:.3} \
                 using {:.0}% of the windows\n",
                analysis.full_ipc(),
                analysis.estimated_ipc(),
                analysis.simulation_fraction() * 100.0
            ));
            println!("{text}");
            all.push_str(&text);
        }
        Err(e) => eprintln!("phase analysis failed: {e}"),
    }

    let path = results_dir.join("extensions.txt");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(all.as_bytes())) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
