//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [--quick] [--markdown] [--results DIR]
//!           [--no-cache] [--cache-dir DIR] [table1 .. fig10]
//! ```
//!
//! With no experiment arguments, all twenty artifacts are produced. Each is
//! printed to stdout and written as `<slug>.txt` / `<slug>.csv` under the
//! results directory (default `results/`). Characterization results are
//! memoized content-addressed under the cache directory (default
//! `results/cache`), so repeated runs replay from disk; `--no-cache` forces
//! full re-simulation and writes nothing.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use workchar::cache::CacheContext;
use workchar::characterize::RunConfig;
use workchar::dataset::Dataset;
use workchar::experiments::{self, correlation_notes, ExperimentId};

fn main() {
    let mut quick = false;
    let mut markdown = false;
    let mut no_cache = false;
    let mut results_dir = PathBuf::from("results");
    let mut cache_dir = PathBuf::from("results/cache");
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--no-cache" => no_cache = true,
            "--results" => {
                results_dir = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--results needs a directory")),
                );
            }
            "--cache-dir" => {
                cache_dir = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--cache-dir needs a directory")),
                );
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            slug => match ExperimentId::from_slug(slug) {
                Some(id) => selected.push(id),
                None => usage(&format!("unknown experiment '{slug}'")),
            },
        }
    }
    if selected.is_empty() {
        selected = ExperimentId::ALL.to_vec();
    }

    let cache = if no_cache {
        None
    } else {
        match CacheContext::open(&cache_dir) {
            Ok(ctx) => {
                if let Some(store) = ctx.store() {
                    if !store.is_empty() {
                        eprintln!(
                            "result cache at {}: {} records on hand",
                            cache_dir.display(),
                            store.len()
                        );
                    }
                }
                Some(ctx)
            }
            Err(e) => {
                eprintln!(
                    "warning: cannot open cache at {}: {e}; running uncached",
                    cache_dir.display()
                );
                None
            }
        }
    };

    let config = if quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    eprintln!(
        "characterizing SPEC CPU2017 (194 pairs, 3 input sizes) and CPU2006 (29 apps) \
         on {} ...",
        config.system.name
    );
    let t0 = Instant::now();
    let data = Dataset::collect_with(config, cache.as_ref());
    eprintln!(
        "collected {} CPU2017 and {} CPU2006 records in {:.1}s",
        data.cpu17.len(),
        data.cpu06.len(),
        t0.elapsed().as_secs_f64()
    );
    if let Some(ctx) = &cache {
        eprintln!("cache: {}", ctx.stats.snapshot());
    }

    if let Err(e) = std::fs::create_dir_all(&results_dir) {
        eprintln!("warning: cannot create {}: {e}", results_dir.display());
    }
    let mut report = String::from(
        "# SPEC CPU2017 characterization — regenerated artifacts\n\n         Produced by the `reproduce` binary; see EXPERIMENTS.md for the\n         paper-vs-measured discussion.\n\n",
    );
    for id in selected {
        let artifact = experiments::run(id, &data);
        let text = artifact.render();
        println!("{text}");
        write_file(&results_dir, &format!("{}.txt", id.slug()), &text);
        write_file(
            &results_dir,
            &format!("{}.csv", id.slug()),
            &artifact.render_csv(),
        );
        report.push_str(&format!("## {id}\n\n"));
        for table in &artifact.tables {
            report.push_str(&table.render_markdown());
            report.push('\n');
        }
        for (i, figure) in artifact.figures.iter().enumerate() {
            let name = if artifact.figures.len() == 1 {
                format!("{}.svg", id.slug())
            } else {
                format!("{}_{}.svg", id.slug(), i + 1)
            };
            write_file(&results_dir, &name, &figure.render_svg(900, 420));
            report.push_str(&format!("![{}]({name})\n\n", figure.title()));
        }
        for (title, body) in &artifact.texts {
            report.push_str(&format!("**{title}**\n\n```text\n{body}```\n\n"));
        }
    }
    if markdown {
        write_file(&results_dir, "REPORT.md", &report);
    }

    // Full per-pair record dump — the machine-readable artifact downstream
    // analyses start from.
    write_file(
        &results_dir,
        "records_cpu2017.csv",
        &workchar::characterize::records_csv(&data.cpu17),
    );
    write_file(
        &results_dir,
        "records_cpu2006.csv",
        &workchar::characterize::records_csv(&data.cpu06),
    );

    println!("==== inline correlations (Sections IV-C / IV-D) ====");
    for (name, c) in correlation_notes(&data) {
        println!("{name}: {c:+.3}");
    }
}

fn write_file(dir: &std::path::Path, name: &str, contents: &str) {
    let path = dir.join(name);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(contents.as_bytes())) {
        Ok(()) => {}
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn print_usage() {
    println!(
        "usage: reproduce [--quick] [--markdown] [--results DIR] \
         [--no-cache] [--cache-dir DIR] [table1..table10 fig1..fig10]"
    );
    println!("  --no-cache    re-simulate everything; do not read or write the result cache");
    println!("  --cache-dir   result-cache directory (default results/cache)");
    println!("experiments:");
    for id in ExperimentId::ALL {
        println!("  {id}");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}
