//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [--quick] [--markdown] [--results DIR]
//!           [--no-cache] [--cache-dir DIR]
//!           [--timeline] [--simpoint] [--events FILE] [--trace] [--race]
//!           [--profile] [--profile-interval N]
//!           [--serve-metrics ADDR]
//!           [table1 .. fig10]
//! ```
//!
//! With no experiment arguments, all twenty artifacts are produced. Each is
//! printed to stdout and written as `<slug>.txt` / `<slug>.csv` under the
//! results directory (default `results/`). Characterization results are
//! memoized content-addressed under the cache directory (default
//! `results/cache`), so repeated runs replay from disk; `--no-cache` forces
//! full re-simulation and writes nothing.
//!
//! `--simpoint` additionally runs a representative-interval campaign over
//! the CPU2017 ref pairs: each pair is profiled in intervals, clustered,
//! sparsely replayed, and the per-pair speedup-vs-error record lands
//! content-addressed under `<results>/simpoints/` (rendered by
//! `simpoint-report`, audited by `lint --simpoint`).
//!
//! Observability: `--timeline` records an interval-sampled counter timeline
//! per pair (written as CSV + SVG sparkline under `<results>/timelines/`;
//! sampled runs bypass the result cache), and `--events FILE` streams
//! structured perfmon span/event records as JSONL. A per-stage summary table
//! (wall time, peak RSS, throughput, cache statistics) prints to stderr at
//! the end of every run. `--trace` records a causal span trace of the whole
//! run — every per-pair job nests under the run root across the scheduler's
//! worker threads — exported as Perfetto-loadable Chrome Trace Event JSON
//! plus the compact binary format under `<results>/traces/` (feed either to
//! `trace-report`). `--race` records synchronization events from the
//! scheduler, the store's index shards, and the metrics registry, and at
//! the end of the run audits them with the vector-clock happens-before
//! checker (`X`-rules; any finding exits nonzero). `--profile` records an
//! op-clocked statistical profile of the whole run — engine samples fold
//! under the pipeline stage and scheduler job frames — and writes the
//! `.prof` artifact, folded stacks, and a flamegraph SVG under
//! `<results>/profiles/` (feed the `.prof` to `prof-report`; profiled runs
//! bypass the result cache so there is always engine work to sample).
//! Process metrics are always on: `--serve-metrics
//! ADDR` scrapes them live (Prometheus text at `/metrics`, JSON at
//! `/metrics.json`), a final snapshot lands in `<results>/metrics.json`,
//! and a panic dumps the flight recorder's last events to
//! `<results>/flight-recorder.json`. Any pipeline error renders on stderr
//! and exits nonzero.

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use perfmon::Recorder;
use uarch_sim::timeline::SamplerConfig;
use workchar::cache::CacheContext;
use workchar::characterize::RunConfig;
use workchar::cli::{ArgStream, PipelineFlags};
use workchar::dataset::Dataset;
use workchar::error::{Error, Result};
use workchar::experiments::{self, correlation_notes, ExperimentId};
use workchar::observe::{write_timeline_artifacts, PipelineSpan};

struct Options {
    quick: bool,
    markdown: bool,
    shared: PipelineFlags,
    selected: Vec<ExperimentId>,
}

fn parse_args() -> Result<Option<Options>> {
    let mut opts = Options {
        quick: false,
        markdown: false,
        shared: PipelineFlags::new(),
        selected: Vec::new(),
    };
    let mut args = ArgStream::from_env();
    while let Some(arg) = args.next() {
        if opts.shared.accept(&arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--markdown" => opts.markdown = true,
            "--help" | "-h" => {
                print_usage();
                return Ok(None);
            }
            slug => match ExperimentId::from_slug(slug) {
                Some(id) => opts.selected.push(id),
                None => {
                    return Err(Error::Usage(format!("unknown experiment '{slug}'")));
                }
            },
        }
    }
    if opts.selected.is_empty() {
        opts.selected = ExperimentId::ALL.to_vec();
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };
    match real_main(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main(opts: Options) -> Result<()> {
    // Metrics are on for the whole run: the substrate crates' counters are
    // sentinel-gated and cost one atomic add per hit, and the flight
    // recorder dumps its last events to the results directory on panic.
    simmetrics::enable();
    workchar::telemetry::register_pipeline_metrics();
    simmetrics::flight::install_dump(&opts.shared.results_dir.join("flight-recorder.json"));
    let _metrics_server = match &opts.shared.serve_metrics {
        Some(addr) => {
            let server = simmetrics::http::serve(addr)?;
            eprintln!("serving metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };

    let recorder = match &opts.shared.events {
        Some(path) => Recorder::to_path(path)?,
        None => Recorder::in_memory(),
    };

    // The trace root opens before any stage so every span of the run —
    // including per-pair jobs on scheduler worker threads — nests under it.
    let trace_root = if opts.shared.trace {
        simtrace::enable();
        let mut root = simtrace::root("run/reproduce");
        root.arg("quick", opts.quick);
        Some(root)
    } else {
        None
    };

    // Race auditing records every sync event for the whole run; the
    // happens-before check happens once at the end, after all stages.
    if opts.shared.race {
        simrace::enable();
        eprintln!("race auditing on: recording sync events for a happens-before check");
    }

    // The profile root frame opens before any stage so every sample of the
    // run folds under it, mirroring the trace root.
    let prof_root = if opts.shared.profile {
        simprof::enable_with_interval(opts.shared.profile_interval);
        eprintln!(
            "profiling on: one sample per {} engine ops, artifacts under {}",
            opts.shared.profile_interval,
            opts.shared.results_dir.join("profiles").display()
        );
        Some(simprof::frame("run/reproduce"))
    } else {
        None
    };

    // A cache-hit run executes no engine ops, leaving nothing to sample,
    // so profiled runs bypass the cache entirely.
    let cache = if opts.shared.no_cache || opts.shared.profile {
        None
    } else {
        match CacheContext::open(&opts.shared.cache_dir) {
            Ok(ctx) => {
                if let Some(store) = ctx.store() {
                    if !store.is_empty() {
                        eprintln!(
                            "result cache at {}: {} records on hand",
                            opts.shared.cache_dir.display(),
                            store.len()
                        );
                    }
                }
                Some(ctx)
            }
            Err(e) => {
                eprintln!(
                    "warning: cannot open cache at {}: {e}; running uncached",
                    opts.shared.cache_dir.display()
                );
                None
            }
        }
    };

    let mut config = if opts.quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    if opts.shared.timeline {
        config = config.with_sampler(SamplerConfig::default());
        if cache.is_some() {
            eprintln!("timeline sampling on: runs bypass the result cache");
        }
    }
    if opts.shared.lint {
        let cpu17 = workload_synth::cpu2017::suite();
        let cpu06 = workload_synth::cpu2006::suite();
        let report = workchar::lint::check_campaign(&[&cpu17, &cpu06], &config);
        if !report.is_empty() {
            eprint!("{}", report.to_table());
        }
        if report.failed(opts.shared.deny_warnings) {
            return Err(report.into());
        }
        eprintln!("lint: profiles and config — {}", report.summary());
    }
    eprintln!(
        "characterizing SPEC CPU2017 (194 pairs, 3 input sizes) and CPU2006 (29 apps) \
         on {} ...",
        config.system.name
    );
    let t0 = Instant::now();
    let mut span = PipelineSpan::open(&recorder, "collect-dataset");
    let data = Dataset::collect_with(config.clone(), cache.as_ref())?;
    let wall = t0.elapsed().as_secs_f64();
    let sim_ops: u64 = data
        .cpu17
        .iter()
        .chain(&data.cpu06)
        .map(|r| r.sim_ops)
        .sum();
    span.record("records_cpu17", data.cpu17.len());
    span.record("records_cpu06", data.cpu06.len());
    span.record("sim_ops", sim_ops);
    if wall > 0.0 {
        span.record("sim_ops_per_sec", sim_ops as f64 / wall);
    }
    if let Some(ctx) = &cache {
        let snap = ctx.stats.snapshot();
        span.record("cache_hits", snap.hits);
        span.record("cache_misses", snap.misses);
    }
    span.finish();
    eprintln!(
        "collected {} CPU2017 and {} CPU2006 records in {wall:.1}s",
        data.cpu17.len(),
        data.cpu06.len(),
    );
    if let Some(ctx) = &cache {
        let snap = ctx.stats.snapshot();
        eprintln!("cache: {snap}");
        recorder.stat(
            "cache",
            &[
                ("hits", snap.hits.into()),
                ("misses", snap.misses.into()),
                ("hit_rate", snap.hit_rate().into()),
                ("bytes_read", snap.bytes_read.into()),
                ("bytes_written", snap.bytes_written.into()),
            ],
        );
    }

    std::fs::create_dir_all(&opts.shared.results_dir)?;
    let mut report = String::from(
        "# SPEC CPU2017 characterization — regenerated artifacts\n\n         Produced by the `reproduce` binary; see EXPERIMENTS.md for the\n         paper-vs-measured discussion.\n\n",
    );
    for id in &opts.selected {
        let id = *id;
        let mut span = PipelineSpan::open(&recorder, "experiment");
        span.record("id", id.slug());
        let artifact = experiments::run(id, &data)?;
        span.record("tables", artifact.tables.len());
        span.record("figures", artifact.figures.len());
        let text = artifact.render();
        println!("{text}");
        write_file(
            &opts.shared.results_dir,
            &format!("{}.txt", id.slug()),
            &text,
        );
        write_file(
            &opts.shared.results_dir,
            &format!("{}.csv", id.slug()),
            &artifact.render_csv(),
        );
        report.push_str(&format!("## {id}\n\n"));
        for table in &artifact.tables {
            report.push_str(&table.render_markdown());
            report.push('\n');
        }
        for (i, figure) in artifact.figures.iter().enumerate() {
            let name = if artifact.figures.len() == 1 {
                format!("{}.svg", id.slug())
            } else {
                format!("{}_{}.svg", id.slug(), i + 1)
            };
            write_file(
                &opts.shared.results_dir,
                &name,
                &figure.render_svg(900, 420),
            );
            report.push_str(&format!("![{}]({name})\n\n", figure.title()));
        }
        for (title, body) in &artifact.texts {
            report.push_str(&format!("**{title}**\n\n```text\n{body}```\n\n"));
        }
        span.finish();
    }
    if opts.markdown {
        write_file(&opts.shared.results_dir, "REPORT.md", &report);
    }

    if opts.shared.timeline {
        let mut span = PipelineSpan::open(&recorder, "timeline-artifacts");
        let dir = opts.shared.results_dir.join("timelines");
        let mut records = data.cpu17.clone();
        records.extend(data.cpu06.iter().cloned());
        let written = write_timeline_artifacts(&records, &dir)?;
        span.record("pairs", written);
        span.finish();
        eprintln!("wrote {written} pair timelines under {}", dir.display());
    }

    if opts.shared.simpoint {
        let mut span = PipelineSpan::open(&recorder, "simpoint-campaign");
        let dir = opts.shared.results_dir.join("simpoints");
        let store = simstore::Store::open(&dir)?;
        let sp = simpoint::SimpointConfig::default();
        let apps = workload_synth::cpu2017::suite();
        eprintln!(
            "simpoint: representative-interval analysis of the CPU2017 ref pairs \
             (records under {})...",
            dir.display()
        );
        let records = workchar::simpoints::run_roster(
            &apps,
            workload_synth::profile::InputSize::Ref,
            &config,
            &sp,
            Some(&store),
        )?;
        span.record("pairs", records.len());
        let table = workchar::simpoints::summary_table(&records);
        let text = table.render_ascii();
        println!("{text}");
        write_file(&opts.shared.results_dir, "simpoints.txt", &text);
        span.finish();
    }

    // Full per-pair record dump — the machine-readable artifact downstream
    // analyses start from.
    write_file(
        &opts.shared.results_dir,
        "records_cpu2017.csv",
        &workchar::characterize::records_csv(&data.cpu17),
    );
    write_file(
        &opts.shared.results_dir,
        "records_cpu2006.csv",
        &workchar::characterize::records_csv(&data.cpu06),
    );

    println!("==== inline correlations (Sections IV-C / IV-D) ====");
    for (name, c) in correlation_notes(&data) {
        println!("{name}: {c:+.3}");
    }

    // Final metric snapshot — the same series the HTTP endpoint serves,
    // persisted for offline inspection.
    write_file(
        &opts.shared.results_dir,
        "metrics.json",
        &simmetrics::json::render(&simmetrics::snapshot()),
    );

    if let Some(root) = trace_root {
        root.finish();
        let spans = simtrace::drain();
        let dir = opts.shared.results_dir.join("traces");
        let (json_path, _bin_path) = simtrace::export(&dir, "reproduce", &spans)?;
        eprintln!(
            "wrote {} trace spans to {} (load in Perfetto, or run trace-report)",
            spans.len(),
            json_path.display()
        );
    }

    if let Some(root) = prof_root {
        drop(root);
        simprof::disable();
        let profile = simprof::drain();
        let dir = opts.shared.results_dir.join("profiles");
        let paths = simprof::export(&dir, "reproduce", &profile)?;
        eprintln!(
            "wrote {} profile samples ({} ops) to {} (run prof-report, or open {})",
            profile.samples.len(),
            profile.total_weight(),
            paths.prof.display(),
            paths.svg.display()
        );
    }

    if opts.shared.race {
        simrace::disable();
        let events = simrace::drain();
        let report = simrace::checker::check_events("run/reproduce", &events);
        eprintln!(
            "race audit: {} sync events — {}",
            events.len(),
            report.summary()
        );
        if !report.is_empty() {
            eprint!("{}", report.to_table());
        }
        if report.failed(opts.shared.deny_warnings) {
            return Err(report.into());
        }
    }

    eprint!("{}", recorder.render_summary());
    Ok(())
}

fn write_file(dir: &std::path::Path, name: &str, contents: &str) {
    let path = dir.join(name);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(contents.as_bytes())) {
        Ok(()) => {}
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn print_usage() {
    println!(
        "usage: reproduce [--quick] [--markdown] [--results DIR] \
         [--no-cache] [--cache-dir DIR] [--lint] [--deny-warnings] \
         [--timeline] [--simpoint] [--events FILE] [--trace] [--race] \
         [--profile] [--profile-interval N] \
         [--serve-metrics ADDR] [table1..table10 fig1..fig10]"
    );
    print!("{}", PipelineFlags::usage_lines());
    println!("experiments:");
    for id in ExperimentId::ALL {
        println!("  {id}");
    }
}
