//! Static model analysis: lints profiles, configs, cached results, and
//! events files without running any simulation.
//!
//! ```text
//! lint [--all] [--profiles] [--config] [--metrics] [--cache-dir DIR]
//!      [--simpoint] [--simpoint-dir DIR] [--race] [--race-seeds N]
//!      [--events FILE]... [--trace FILE]... [--prof FILE]... [--quick]
//!      [--json] [--deny-warnings] [--explain CODE]
//! ```
//!
//! `--all` lints the shipped CPU2017 + CPU2006 rosters, the Haswell
//! system configuration, and the pipeline's metric registry, and — when
//! the default cache directory (`results/cache`) exists — audits every
//! cached record's counter identities, plus any simpoint records under
//! `results/simpoints/`, trace artifacts under `results/traces/`, and
//! profile artifacts under `results/profiles/`.
//! Individual passes can be selected with `--profiles`, `--config`,
//! `--metrics`, `--cache-dir DIR`, `--simpoint` (default store location) /
//! `--simpoint-dir DIR`, `--race` (schedule exploration of the scheduler's
//! synchronization protocol; `--race-seeds N` schedules per model shape,
//! default 16), `--events FILE` (repeatable), `--trace FILE`
//! (repeatable; either simtrace export format), and `--prof FILE`
//! (repeatable; simprof `.prof` artifacts).
//!
//! Every violation carries a stable rule code (`P...` profile, `C...`
//! config, `R...` result, `E...` events, `M...` metrics, `T...` trace,
//! `S...` simpoint, `X...` concurrency, `F...` profiler); `--explain CODE`
//! prints the catalog entry for one rule. Exits 0 when clean, 1 when any
//! error (or, under `--deny-warnings`, any warning) was found, 2 on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use simcheck::Report;
use workchar::characterize::RunConfig;
use workchar::error::{Error, Result};
use workchar::lint;
use workload_synth::{cpu2006, cpu2017};

struct Options {
    profiles: bool,
    config: bool,
    metrics: bool,
    cache_dir: Option<PathBuf>,
    simpoint_dir: Option<PathBuf>,
    events: Vec<PathBuf>,
    traces: Vec<PathBuf>,
    profs: Vec<PathBuf>,
    race: bool,
    race_seeds: u64,
    quick: bool,
    json: bool,
    deny_warnings: bool,
}

fn parse_args() -> Result<Option<Options>> {
    let mut opts = Options {
        profiles: false,
        config: false,
        metrics: false,
        cache_dir: None,
        simpoint_dir: None,
        events: Vec::new(),
        traces: Vec::new(),
        profs: Vec::new(),
        race: false,
        race_seeds: 16,
        quick: false,
        json: false,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {
                opts.profiles = true;
                opts.config = true;
                opts.metrics = true;
                opts.race = true;
                // Audit the default cache location only if a cache exists
                // there; a fresh checkout must still lint clean.
                let default_cache = PathBuf::from("results/cache");
                if opts.cache_dir.is_none() && default_cache.is_dir() {
                    opts.cache_dir = Some(default_cache);
                }
                // Simpoint records get the same opportunistic pick-up.
                let default_simpoints = PathBuf::from("results/simpoints");
                if opts.simpoint_dir.is_none() && default_simpoints.is_dir() {
                    opts.simpoint_dir = Some(default_simpoints);
                }
                // Same opportunistic pick-up for trace artifacts: audit
                // whatever `reproduce --trace` has left behind, if anything.
                let default_traces = PathBuf::from("results/traces");
                if let Ok(entries) = std::fs::read_dir(&default_traces) {
                    let mut found: Vec<PathBuf> = entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|p| {
                            p.file_name()
                                .and_then(|n| n.to_str())
                                .is_some_and(|n| n.ends_with(".trace.json"))
                        })
                        .collect();
                    found.sort();
                    opts.traces.extend(found);
                }
                // And for profiler artifacts from `reproduce --profile`.
                let default_profiles = PathBuf::from("results/profiles");
                if let Ok(entries) = std::fs::read_dir(&default_profiles) {
                    let mut found: Vec<PathBuf> = entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|p| {
                            p.extension()
                                .and_then(|e| e.to_str())
                                .is_some_and(|e| e == "prof")
                        })
                        .collect();
                    found.sort();
                    opts.profs.extend(found);
                }
            }
            "--profiles" => opts.profiles = true,
            "--config" => opts.config = true,
            "--metrics" => opts.metrics = true,
            "--race" => opts.race = true,
            "--race-seeds" => {
                let raw = args
                    .next()
                    .ok_or_else(|| Error::Usage("--race-seeds needs a count".to_string()))?;
                opts.race_seeds = raw
                    .parse()
                    .map_err(|_| Error::Usage(format!("--race-seeds: '{raw}' is not a number")))?;
                opts.race = true;
            }
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--cache-dir" => {
                opts.cache_dir =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        Error::Usage("--cache-dir needs a directory".to_string())
                    })?));
            }
            "--simpoint" => {
                if opts.simpoint_dir.is_none() {
                    opts.simpoint_dir = Some(PathBuf::from("results/simpoints"));
                }
            }
            "--simpoint-dir" => {
                opts.simpoint_dir = Some(PathBuf::from(args.next().ok_or_else(|| {
                    Error::Usage("--simpoint-dir needs a directory".to_string())
                })?));
            }
            "--events" => {
                opts.events
                    .push(PathBuf::from(args.next().ok_or_else(|| {
                        Error::Usage("--events needs a file path".to_string())
                    })?));
            }
            "--trace" => {
                opts.traces
                    .push(PathBuf::from(args.next().ok_or_else(|| {
                        Error::Usage("--trace needs a file path".to_string())
                    })?));
            }
            "--prof" => {
                opts.profs
                    .push(PathBuf::from(args.next().ok_or_else(|| {
                        Error::Usage("--prof needs a file path".to_string())
                    })?));
            }
            "--explain" => {
                let code = args
                    .next()
                    .ok_or_else(|| Error::Usage("--explain needs a rule code".to_string()))?;
                match simcheck::explain(&code) {
                    Some(text) => {
                        println!("{text}");
                        return Ok(None);
                    }
                    None => {
                        let hint = match simcheck::suggest(&code) {
                            Some(s) => format!("; did you mean '{s}'?"),
                            None => String::new(),
                        };
                        return Err(Error::Usage(format!(
                            "unknown rule code '{code}' (codes are P/C/R/E/M/T/S/X/Fxxx; \
                             see DESIGN.md){hint}"
                        )));
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return Ok(None);
            }
            other => {
                return Err(Error::Usage(format!("unknown argument '{other}'")));
            }
        }
    }
    let selected_any = opts.profiles
        || opts.config
        || opts.metrics
        || opts.race
        || opts.cache_dir.is_some()
        || opts.simpoint_dir.is_some()
        || !opts.events.is_empty()
        || !opts.traces.is_empty()
        || !opts.profs.is_empty();
    if !selected_any {
        return Err(Error::Usage(
            "nothing to lint; pass --all or select passes (see --help)".to_string(),
        ));
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<Report> {
    let config = if opts.quick {
        RunConfig::quick()
    } else {
        RunConfig::default()
    };
    let mut report = Report::new();

    if opts.profiles || opts.config {
        let cpu17 = cpu2017::suite();
        let cpu06 = cpu2006::suite();
        if opts.profiles && opts.config {
            report.merge(lint::check_campaign(&[&cpu17, &cpu06], &config));
            eprintln!(
                "linted {} CPU2017 + {} CPU2006 profiles and config '{}'",
                cpu17.len(),
                cpu06.len(),
                config.system.name
            );
        } else if opts.config {
            report.merge(uarch_sim::lint::check_system(&config.system));
            eprintln!("linted config '{}'", config.system.name);
        } else {
            for apps in [&cpu17, &cpu06] {
                report.merge(workload_synth::lint::check_roster(
                    apps,
                    Some(&config.system),
                ));
            }
            eprintln!(
                "linted {} CPU2017 + {} CPU2006 profiles",
                cpu17.len(),
                cpu06.len()
            );
        }
    }

    if opts.metrics {
        // Register every metric the pipeline can emit, then lint the
        // registry itself — names, labels, and suffix conventions.
        workchar::telemetry::register_pipeline_metrics();
        let snapshot = simmetrics::snapshot();
        eprintln!("linted {} registered metric series", snapshot.series.len());
        report.merge(simmetrics::lint::check_snapshot(&snapshot));
    }

    if opts.race {
        let (explored, race_report) = lint::check_race(opts.race_seeds);
        eprintln!("explored {explored} scheduler schedules for races and deadlocks");
        report.merge(race_report);
    }

    if let Some(dir) = &opts.cache_dir {
        let store = simstore::Store::open(dir)?;
        let (visited, audit) = lint::audit_cache(&store, Some(&config.system));
        eprintln!("audited {visited} cached records under {}", dir.display());
        report.merge(audit);
    }

    if let Some(dir) = &opts.simpoint_dir {
        let store = simstore::Store::open(dir)?;
        let (visited, audit) = simpoint::lint::audit_store(&store);
        eprintln!("audited {visited} simpoint records under {}", dir.display());
        report.merge(audit);
    }

    for path in &opts.events {
        let text = std::fs::read_to_string(path)?;
        let (summary, events_report) = perfmon::check_events(&path.display().to_string(), &text);
        eprintln!(
            "audited {}: {} spans, {} events",
            path.display(),
            summary.spans,
            summary.events
        );
        report.merge(events_report);
    }

    for path in &opts.traces {
        let spans = simtrace::load(path)?;
        eprintln!("audited {}: {} trace spans", path.display(), spans.len());
        report.merge(simtrace::lint::check_trace(
            &path.display().to_string(),
            &spans,
        ));
    }

    for path in &opts.profs {
        let text = std::fs::read_to_string(path)?;
        eprintln!(
            "audited {}: {} profile lines",
            path.display(),
            text.lines().count()
        );
        report.merge(simprof::lint::check_profile_text(
            &path.display().to_string(),
            &text,
        ));
    }

    Ok(report)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_table());
    }
    if report.failed(opts.deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_usage() {
    println!(
        "usage: lint [--all] [--profiles] [--config] [--metrics] [--cache-dir DIR] \
         [--simpoint] [--simpoint-dir DIR] [--race] [--race-seeds N] \
         [--events FILE]... [--trace FILE]... [--prof FILE]... [--quick] [--json] \
         [--deny-warnings] [--explain CODE]"
    );
    println!(
        "  --all            lint shipped rosters + config + metric registry + scheduler \
         race check (+ results/cache, results/simpoints, results/traces, and \
         results/profiles if present)"
    );
    println!("  --profiles       lint the CPU2017 and CPU2006 behavior profiles (P-rules)");
    println!("  --config         lint the system configuration (C-rules)");
    println!("  --metrics        lint the pipeline's metric registry (M-rules)");
    println!("  --cache-dir DIR  audit every cached record in DIR (R-rules)");
    println!("  --simpoint       audit simpoint records under results/simpoints (S-rules)");
    println!("  --simpoint-dir DIR  audit simpoint records in DIR (S-rules)");
    println!("  --race           explore scheduler schedules for races and deadlocks (X-rules)");
    println!("  --race-seeds N   schedules per model shape for --race (default 16)");
    println!("  --events FILE    audit a perfmon JSONL stream (E-rules; repeatable)");
    println!(
        "  --trace FILE     audit a simtrace artifact, .trace.json or .trace.bin \
         (T-rules; repeatable)"
    );
    println!("  --prof FILE      audit a simprof .prof artifact (F-rules; repeatable)");
    println!("  --quick          use the reduced-fidelity run configuration");
    println!("  --json           machine-readable diagnostics document on stdout");
    println!("  --deny-warnings  exit nonzero on warnings, not just errors");
    println!("  --explain CODE   print the catalog entry for one rule and exit");
}
