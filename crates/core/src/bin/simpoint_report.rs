//! Renders and gates the simpoint records a `--simpoint` campaign stored.
//!
//! ```text
//! simpoint-report [--dir DIR] [--markdown] [--json]
//!                 [--max-error PCT] [--min-speedup X]
//! ```
//!
//! Reads every record under the store directory (default
//! `results/simpoints`), prints the per-pair speedup-vs-error table, and —
//! when gates are given — fails the run if any pair's headline
//! reconstruction error exceeds `--max-error` percent or any pair's
//! speedup falls below `--min-speedup`. Exits 0 when clean, 1 when a gate
//! is violated (or a record does not decode), 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use simpoint::SimpointRecord;
use workchar::cli::ArgStream;
use workchar::error::{Error, Result};
use workchar::simpoints::summary_table;

struct Options {
    dir: PathBuf,
    markdown: bool,
    json: bool,
    max_error_pct: Option<f64>,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Option<Options>> {
    let mut opts = Options {
        dir: PathBuf::from("results/simpoints"),
        markdown: false,
        json: false,
        max_error_pct: None,
        min_speedup: None,
    };
    let mut args = ArgStream::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => opts.dir = args.path(&arg, "a directory")?,
            "--markdown" => opts.markdown = true,
            "--json" => opts.json = true,
            "--max-error" => {
                opts.max_error_pct = Some(args.number(&arg, "a percentage")?);
            }
            "--min-speedup" => {
                opts.min_speedup = Some(args.number(&arg, "a factor")?);
            }
            "--help" | "-h" => {
                print_usage();
                return Ok(None);
            }
            other => {
                return Err(Error::Usage(format!("unknown argument '{other}'")));
            }
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            return ExitCode::from(2);
        }
    };
    match real_main(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main(opts: &Options) -> Result<bool> {
    let store = simstore::Store::open(&opts.dir)?;
    let mut records = Vec::new();
    let mut undecodable = 0usize;
    for key in store.keys() {
        let Some(payload) = store.get(key) else {
            continue;
        };
        match SimpointRecord::decode(&payload) {
            Ok(record) => records.push(record),
            Err(e) => {
                eprintln!("error: record {key} does not decode: {e}");
                undecodable += 1;
            }
        }
    }
    if records.is_empty() && undecodable == 0 {
        return Err(Error::MissingData(format!(
            "no simpoint records under {} (run `reproduce --simpoint` first)",
            opts.dir.display()
        )));
    }
    records.sort_by(|a, b| a.id.cmp(&b.id));
    let table = summary_table(&records);
    if opts.json {
        println!("{}", table.render_csv());
    } else if opts.markdown {
        println!("{}", table.render_markdown());
    } else {
        println!("{}", table.render_ascii());
    }

    let mut clean = undecodable == 0;
    if let Some(max_pct) = opts.max_error_pct {
        for r in &records {
            let pct = r.max_headline_error() * 100.0;
            if pct > max_pct {
                eprintln!(
                    "gate: {} headline error {pct:.2}% exceeds --max-error {max_pct}%",
                    r.id
                );
                clean = false;
            }
        }
    }
    if let Some(min) = opts.min_speedup {
        for r in &records {
            let speedup = r.speedup();
            if speedup < min {
                eprintln!(
                    "gate: {} speedup {speedup:.1}x below --min-speedup {min}x",
                    r.id
                );
                clean = false;
            }
        }
    }
    if clean {
        let worst_err = records
            .iter()
            .map(|r| r.max_headline_error())
            .fold(0.0f64, f64::max);
        let worst_speedup = records
            .iter()
            .map(|r| r.speedup())
            .fold(f64::INFINITY, f64::min);
        eprintln!(
            "{} pair(s): worst headline error {:.2}%, worst speedup {:.1}x",
            records.len(),
            worst_err * 100.0,
            worst_speedup
        );
    }
    Ok(clean)
}

fn print_usage() {
    println!(
        "usage: simpoint-report [--dir DIR] [--markdown] [--json] \
         [--max-error PCT] [--min-speedup X]"
    );
    println!("  --dir DIR        simpoint store directory (default results/simpoints)");
    println!("  --markdown       render the table as markdown instead of ASCII");
    println!("  --json           render the table as CSV on stdout");
    println!("  --max-error PCT  fail if any pair's headline error exceeds PCT percent");
    println!("  --min-speedup X  fail if any pair's speedup falls below X");
}
