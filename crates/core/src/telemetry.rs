//! This crate's process-metric handles (the `workchar_*` namespace), plus
//! the one-stop registration entry point for the whole pipeline.
//!
//! [`crate::characterize::characterize_pair`] splits into three stages —
//! preparing the trace and hints, running the engine, and sampling the
//! footprint model — and each gets a latency histogram here so a scrape of
//! a long campaign shows where pair wall-time actually goes. The handles
//! are `OnceLock`-cached so the per-pair cost is one pointer load per
//! stage; when metrics are disabled the histograms' own sentinel check
//! makes every record a no-op.

use std::sync::OnceLock;

use simmetrics::{Counter, Histogram};

macro_rules! handle {
    ($(#[$doc:meta])* $vis:vis fn $fn_name:ident() -> &'static $ty:ident {
        $ctor:ident($name:expr, $help:expr)
    }) => {
        $(#[$doc])*
        $vis fn $fn_name() -> &'static $ty {
            static H: OnceLock<$ty> = OnceLock::new();
            H.get_or_init(|| simmetrics::$ctor($name, $help))
        }
    };
}

handle! {
    /// Pairs fully characterized (cache hits included).
    pub(crate) fn pairs_characterized() -> &'static Counter {
        counter(
            "workchar_pairs_characterized_total",
            "Application-input pairs fully characterized, cache hits included."
        )
    }
}

handle! {
    /// Trace-generator and hint construction latency.
    pub(crate) fn stage_prepare_micros() -> &'static Histogram {
        histogram(
            "workchar_stage_prepare_micros",
            "Per-pair latency of trace-generator and hint construction."
        )
    }
}

handle! {
    /// Engine simulation latency (the dominant stage).
    pub(crate) fn stage_simulate_micros() -> &'static Histogram {
        histogram(
            "workchar_stage_simulate_micros",
            "Per-pair latency of the engine run, warmup included."
        )
    }
}

handle! {
    /// Footprint-model sampling latency.
    pub(crate) fn stage_footprint_micros() -> &'static Histogram {
        histogram(
            "workchar_stage_footprint_micros",
            "Per-pair latency of the ps-style memory-footprint sampling."
        )
    }
}

/// One guard covering a pipeline stage in *three* observability layers:
/// dropping it closes the simtrace span, records the simmetrics latency
/// histogram sample, and pops the simprof frame from the same scope, so
/// the trace view, the metric view, and the profile's stage attribution
/// always describe the same wall-clock window.
pub(crate) struct StageTimer {
    _span: simtrace::SpanGuard,
    _timer: simmetrics::Timer,
    _frame: simprof::FrameGuard,
}

/// Opens a [`StageTimer`] for the stage named `span_name`, feeding
/// `histogram` on close. The span and frame nest under whatever is current
/// on this thread (the scheduler's per-job span during suite runs).
pub(crate) fn stage(span_name: &str, histogram: &'static Histogram) -> StageTimer {
    StageTimer {
        _span: simtrace::span(span_name),
        _timer: histogram.start_timer(),
        _frame: simprof::frame(span_name),
    }
}

/// Forces registration of every metric the pipeline can emit — this
/// crate's `workchar_*` handles plus the `simstore_*`, `uarch_*`, and
/// `workload_*` families owned by the substrate crates.
///
/// Call this before rendering an exposition (or linting the registry with
/// `--metrics`) so the output is complete even when a run never exercised
/// a given path.
pub fn register_pipeline_metrics() {
    pairs_characterized();
    stage_prepare_micros();
    stage_simulate_micros();
    stage_footprint_micros();
    simstore::metrics::register();
    uarch_sim::metrics::register();
    workload_synth::metrics::register();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_registry_is_lint_clean() {
        register_pipeline_metrics();
        let report = simmetrics::lint::check_registry();
        assert!(
            !report.has_errors(),
            "pipeline metric registry has lint errors: {report:?}"
        );
    }
}
