//! Shared command-line parsing for the pipeline binaries.
//!
//! `reproduce`, `extensions`, and `simpoint-report` grew three copies of
//! the same hand-rolled flag loop (the workspace is dependency-free, so
//! there is no clap). This module centralizes the two duplicated pieces:
//!
//! - [`ArgStream`]: a cursor over the argument list with value-taking
//!   helpers that produce consistent [`Error::Usage`] diagnostics
//!   (`--flag needs a …`, `--flag: 'x' is not a number`).
//! - [`PipelineFlags`]: the observability/caching flag block the two
//!   campaign binaries share (`--results`, `--cache-dir`, `--no-cache`,
//!   `--lint`, `--deny-warnings`, `--timeline`, `--simpoint`, `--trace`,
//!   `--race`, `--profile`, `--profile-interval`, `--events`,
//!   `--serve-metrics`), parsed by a single `accept` call so the binaries
//!   cannot drift apart flag by flag.

use std::path::PathBuf;
use std::str::FromStr;

use crate::error::{Error, Result};

/// A cursor over command-line arguments with usage-error helpers.
pub struct ArgStream {
    args: std::vec::IntoIter<String>,
}

impl ArgStream {
    /// The process's arguments, program name already skipped.
    pub fn from_env() -> Self {
        ArgStream {
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
        }
    }

    /// A fixed argument list (tests).
    pub fn from_args<I: IntoIterator<Item = S>, S: Into<String>>(args: I) -> Self {
        ArgStream {
            args: args
                .into_iter()
                .map(Into::into)
                .collect::<Vec<_>>()
                .into_iter(),
        }
    }

    /// The next raw argument, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    /// Takes the value following `flag`, failing with a uniform usage
    /// message naming `what` (e.g. `"a directory"`, `"a file path"`).
    pub fn value(&mut self, flag: &str, what: &str) -> Result<String> {
        self.args
            .next()
            .ok_or_else(|| Error::Usage(format!("{flag} needs {what}")))
    }

    /// [`ArgStream::value`] as a `PathBuf`.
    pub fn path(&mut self, flag: &str, what: &str) -> Result<PathBuf> {
        Ok(PathBuf::from(self.value(flag, what)?))
    }

    /// Takes and parses the numeric value following `flag`.
    pub fn number<T: FromStr>(&mut self, flag: &str, what: &str) -> Result<T> {
        let raw = self.value(flag, what)?;
        raw.parse()
            .map_err(|_| Error::Usage(format!("{flag}: '{raw}' is not a number")))
    }
}

/// The flag block shared by the campaign binaries (`reproduce`,
/// `extensions`): results/cache locations plus the observability toggles.
#[derive(Debug, Clone)]
pub struct PipelineFlags {
    /// Artifact output directory (`--results`, default `results`).
    pub results_dir: PathBuf,
    /// Result-cache directory (`--cache-dir`, default `results/cache`).
    pub cache_dir: PathBuf,
    /// Re-simulate everything; touch no cache (`--no-cache`).
    pub no_cache: bool,
    /// Statically check profiles and config first (`--lint`).
    pub lint: bool,
    /// With `--lint`, refuse to run on warnings too (`--deny-warnings`).
    pub deny_warnings: bool,
    /// Sample per-pair counter timelines (`--timeline`).
    pub timeline: bool,
    /// Run the representative-interval campaign (`--simpoint`).
    pub simpoint: bool,
    /// Record a causal span trace of the run (`--trace`).
    pub trace: bool,
    /// Record sync events and audit the run for data races (`--race`).
    pub race: bool,
    /// Record an op-clocked statistical profile of the run (`--profile`).
    pub profile: bool,
    /// Profile sampling interval in engine ops (`--profile-interval N`).
    pub profile_interval: u64,
    /// Stream perfmon span/event JSONL to this file (`--events FILE`).
    pub events: Option<PathBuf>,
    /// Serve live process metrics on this address (`--serve-metrics ADDR`).
    pub serve_metrics: Option<String>,
}

impl Default for PipelineFlags {
    fn default() -> Self {
        PipelineFlags {
            results_dir: PathBuf::from("results"),
            cache_dir: PathBuf::from("results/cache"),
            no_cache: false,
            lint: false,
            deny_warnings: false,
            timeline: false,
            simpoint: false,
            trace: false,
            race: false,
            profile: false,
            profile_interval: simprof::DEFAULT_INTERVAL,
            events: None,
            serve_metrics: None,
        }
    }
}

impl PipelineFlags {
    /// Defaults: `results` / `results/cache`, everything off.
    pub fn new() -> Self {
        PipelineFlags::default()
    }

    /// Consumes `arg` if it belongs to the shared block, pulling any value
    /// from `args`. Returns `Ok(true)` when consumed, `Ok(false)` when the
    /// caller should handle the argument itself.
    pub fn accept(&mut self, arg: &str, args: &mut ArgStream) -> Result<bool> {
        match arg {
            "--results" => self.results_dir = args.path(arg, "a directory")?,
            "--cache-dir" => self.cache_dir = args.path(arg, "a directory")?,
            "--no-cache" => self.no_cache = true,
            "--lint" => self.lint = true,
            "--deny-warnings" => self.deny_warnings = true,
            "--timeline" => self.timeline = true,
            "--simpoint" => self.simpoint = true,
            "--trace" => self.trace = true,
            "--race" => self.race = true,
            "--profile" => self.profile = true,
            "--profile-interval" => {
                self.profile = true;
                self.profile_interval = args.number::<u64>(arg, "an op count")?.max(1);
            }
            "--events" => self.events = Some(args.path(arg, "a file path")?),
            "--serve-metrics" => {
                self.serve_metrics = Some(args.value(arg, "an address like 127.0.0.1:9184")?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// One usage line per shared flag, for the binaries' `--help` output.
    pub fn usage_lines() -> &'static str {
        concat!(
            "  --results DIR    artifact output directory (default results)\n",
            "  --no-cache       re-simulate everything; do not read or write the result cache\n",
            "  --cache-dir DIR  result-cache directory (default results/cache)\n",
            "  --lint           statically check profiles and config before simulating\n",
            "  --deny-warnings  with --lint, refuse to run on warnings too\n",
            "  --timeline       sample a per-pair counter timeline (CSV + SVG under results/timelines)\n",
            "  --simpoint       run the representative-interval campaign (records under results/simpoints)\n",
            "  --events FILE    write perfmon span/event records as JSONL to FILE\n",
            "  --trace          record a causal span trace under results/traces/ (Perfetto JSON + binary)\n",
            "  --race           record sync events and audit the run for data races (X-rules)\n",
            "  --profile        record an op-clocked statistical profile under results/profiles/\n",
            "                   (.prof artifact + folded stacks + flamegraph SVG; implies --no-cache)\n",
            "  --profile-interval N  ops per profile sample (default 10000; implies --profile)\n",
            "  --serve-metrics ADDR  serve Prometheus text at http://ADDR/metrics (JSON at /metrics.json)\n",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_helpers_produce_uniform_usage_errors() {
        let mut args = ArgStream::from_args(Vec::<String>::new());
        let err = args.value("--events", "a file path").unwrap_err();
        assert_eq!(err.to_string(), "usage: --events needs a file path");
        let mut args = ArgStream::from_args(["abc"]);
        let err = args
            .number::<f64>("--max-error", "a percentage")
            .unwrap_err();
        assert_eq!(err.to_string(), "usage: --max-error: 'abc' is not a number");
    }

    #[test]
    fn number_parses_value() {
        let mut args = ArgStream::from_args(["3.5"]);
        let v: f64 = args.number("--min-speedup", "a factor").unwrap();
        assert_eq!(v, 3.5);
    }

    #[test]
    fn pipeline_flags_consume_the_shared_block() {
        let mut args = ArgStream::from_args([
            "--results",
            "out",
            "--no-cache",
            "--timeline",
            "--events",
            "ev.jsonl",
            "--serve-metrics",
            "127.0.0.1:9184",
            "--quick",
        ]);
        let mut flags = PipelineFlags::new();
        let mut rest = Vec::new();
        while let Some(arg) = args.next() {
            if !flags.accept(&arg, &mut args).unwrap() {
                rest.push(arg);
            }
        }
        assert_eq!(flags.results_dir, PathBuf::from("out"));
        assert_eq!(flags.cache_dir, PathBuf::from("results/cache"));
        assert!(flags.no_cache && flags.timeline);
        assert!(!flags.lint && !flags.trace && !flags.simpoint && !flags.race && !flags.profile);
        assert_eq!(
            flags.events.as_deref(),
            Some(std::path::Path::new("ev.jsonl"))
        );
        assert_eq!(flags.serve_metrics.as_deref(), Some("127.0.0.1:9184"));
        assert_eq!(rest, ["--quick"], "unknown args flow back to the caller");
    }

    #[test]
    fn profile_interval_implies_profile() {
        let mut args = ArgStream::from_args(["--profile-interval", "5000"]);
        let mut flags = PipelineFlags::new();
        let arg = args.next().unwrap();
        assert!(flags.accept(&arg, &mut args).unwrap());
        assert!(flags.profile);
        assert_eq!(flags.profile_interval, 5000);
        // Bare --profile keeps the default interval.
        let mut args = ArgStream::from_args(["--profile"]);
        let mut flags = PipelineFlags::new();
        let arg = args.next().unwrap();
        assert!(flags.accept(&arg, &mut args).unwrap());
        assert!(flags.profile);
        assert_eq!(flags.profile_interval, simprof::DEFAULT_INTERVAL);
    }

    #[test]
    fn missing_flag_value_is_a_usage_error() {
        let mut args = ArgStream::from_args(["--cache-dir"]);
        let mut flags = PipelineFlags::new();
        let arg = args.next().unwrap();
        let err = flags.accept(&arg, &mut args).unwrap_err();
        assert!(err.to_string().contains("--cache-dir needs a directory"));
    }
}
