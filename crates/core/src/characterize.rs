//! Per-pair characterization: run one application–input pair on the
//! simulated system and collect every metric the paper reports.

use simstore::{Progress, RunReport, Scheduler};
use uarch_sim::config::SystemConfig;
use uarch_sim::counters::{Event, PerfSession};
use uarch_sim::engine::Engine;
use uarch_sim::exec::ExecPlan;
use uarch_sim::timeline::SamplerConfig;
use workload_synth::footprint::{GrowthCurve, MemoryMap, PsSampler};
use workload_synth::generator::{TraceGenerator, TraceScale};
use workload_synth::profile::{AppInputPair, AppProfile, InputSize, Suite};

use crate::cache::{characterize_pair_cached, CacheContext};
use crate::error::{Error, Result};

/// Configuration of a characterization campaign: which system to simulate
/// and how aggressively to scale traces down.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The simulated machine (defaults to the paper's Haswell, Table I).
    pub system: SystemConfig,
    /// Trace scaling (micro-ops per paper-scale billion instructions).
    pub scale: TraceScale,
    /// When set, every run also records an interval-sampled
    /// [`uarch_sim::timeline::CounterTimeline`] on its session
    /// (`--timeline` in the binaries). `None` — the default — keeps runs
    /// sampling-free and byte-identical to the unsampled pipeline.
    pub sampler: Option<SamplerConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            system: SystemConfig::haswell_e5_2650l_v3(),
            scale: TraceScale::default(),
            sampler: None,
        }
    }
}

impl RunConfig {
    /// A reduced-fidelity configuration for tests and demos.
    pub fn quick() -> Self {
        RunConfig {
            system: SystemConfig::haswell_e5_2650l_v3(),
            scale: TraceScale::quick(),
            sampler: None,
        }
    }

    /// The same configuration with interval sampling enabled.
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = Some(sampler);
        self
    }
}

/// Everything the paper measures for one application–input pair.
///
/// Microarchitecture-dependent values (IPC, miss rates, mispredict rate)
/// are *measured* from simulation; footprints come from the `ps`-style
/// sampler; the paper-scale projections convert simulated quantities back
/// to the paper's units for side-by-side comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CharRecord {
    /// Pair id, e.g. `"603.bwaves_s-in2"`.
    pub id: String,
    /// Application name.
    pub app: String,
    /// Input name.
    pub input: String,
    /// Mini-suite.
    pub suite: Suite,
    /// Input size.
    pub size: InputSize,
    /// Raw counter file of the simulated run.
    pub session: PerfSession,
    /// Simulated micro-ops executed.
    pub sim_ops: u64,
    /// Paper-scale dynamic instructions, billions (profile-declared volume).
    pub instructions_billions: f64,
    /// Measured instructions per cycle.
    pub ipc: f64,
    /// Measured load micro-op percentage.
    pub load_pct: f64,
    /// Measured store micro-op percentage.
    pub store_pct: f64,
    /// Measured branch instruction percentage.
    pub branch_pct: f64,
    /// Measured L1D load miss rate (percent).
    pub l1_miss_pct: f64,
    /// Measured local L2 load miss rate (percent).
    pub l2_miss_pct: f64,
    /// Measured local L3 load miss rate (percent).
    pub l3_miss_pct: f64,
    /// Measured branch mispredict rate (percent).
    pub mispredict_pct: f64,
    /// Maximum RSS observed by the sampler, GiB.
    pub rss_gib: f64,
    /// Maximum VSZ observed by the sampler, GiB.
    pub vsz_gib: f64,
    /// CPI-stack components (cycles per instruction of the counted phase):
    /// issue/ILP-bound base cycles.
    pub cpi_base: f64,
    /// Branch-mispredict refill cycles per instruction.
    pub cpi_branch: f64,
    /// Data-cache stall cycles per instruction (after MLP overlap).
    pub cpi_memory: f64,
    /// Instruction-fetch stall cycles per instruction.
    pub cpi_frontend: f64,
    /// Simulated wall-clock seconds of the scaled trace.
    pub sim_seconds: f64,
    /// Projected paper-scale execution seconds:
    /// `instructions / (measured IPC × clock)`.
    pub projected_seconds: f64,
}

impl CharRecord {
    /// Fraction of branches of one kind (measured), in `[0, 1]`.
    pub fn branch_kind_frac(&self, event: Event) -> f64 {
        let total = self.session.count(Event::BrInstExecAllBranches);
        if total == 0 {
            0.0
        } else {
            self.session.count(event) as f64 / total as f64
        }
    }

    /// Paper-scale count (billions) for a measured event, scaled by the
    /// event's per-instruction rate times the pair's instruction volume.
    pub fn projected_billions(&self, event: Event) -> f64 {
        let inst = self.session.count(Event::InstRetiredAny);
        if inst == 0 {
            return 0.0;
        }
        self.instructions_billions * self.session.count(event) as f64 / inst as f64
    }
}

impl CharRecord {
    /// Column names for [`CharRecord::csv_row`].
    pub const CSV_HEADER: [&'static str; 18] = [
        "id",
        "app",
        "input",
        "suite",
        "size",
        "sim_ops",
        "instructions_b",
        "ipc",
        "load_pct",
        "store_pct",
        "branch_pct",
        "l1_miss_pct",
        "l2_miss_pct",
        "l3_miss_pct",
        "mispredict_pct",
        "rss_gib",
        "vsz_gib",
        "projected_seconds",
    ];

    /// One CSV record of the headline metrics (the full counter file stays
    /// in [`CharRecord::session`]).
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.id.clone(),
            self.app.clone(),
            self.input.clone(),
            self.suite.label().to_owned(),
            self.size.label().to_owned(),
            self.sim_ops.to_string(),
            format!("{:.3}", self.instructions_billions),
            format!("{:.4}", self.ipc),
            format!("{:.3}", self.load_pct),
            format!("{:.3}", self.store_pct),
            format!("{:.3}", self.branch_pct),
            format!("{:.3}", self.l1_miss_pct),
            format!("{:.3}", self.l2_miss_pct),
            format!("{:.3}", self.l3_miss_pct),
            format!("{:.3}", self.mispredict_pct),
            format!("{:.4}", self.rss_gib),
            format!("{:.4}", self.vsz_gib),
            format!("{:.3}", self.projected_seconds),
        ]
    }
}

/// Renders a record set as one CSV document (header + one row per record).
pub fn records_csv(records: &[CharRecord]) -> String {
    let mut out = simreport::csv::line(&CharRecord::CSV_HEADER);
    for r in records {
        out.push_str(&simreport::csv::line(&r.csv_row()));
    }
    out
}

/// Builds the canonical (trace, hints) pair for one application–input pair:
/// the seeded generator at the configured scale, plus engine hints carrying
/// the generator's L2-bypass range. Every consumer of the simulator —
/// characterization, ablations, phase analysis — should start here so runs
/// are comparable.
///
/// # Errors
///
/// [`Error::Behavior`] when the pair's profile fails validation.
pub fn prepared_run(
    pair: &AppInputPair<'_>,
    config: &RunConfig,
) -> Result<(TraceGenerator, uarch_sim::engine::WorkloadHints)> {
    let trace = TraceGenerator::from_pair(pair, &config.system, &config.scale)?;
    let mut hints = pair.input.behavior.hints(&config.system);
    hints.l2_bypass_range = Some(trace.l2_bypass_range());
    Ok((trace, hints))
}

/// Runs one pair through a fresh engine and derives every reported metric.
///
/// # Errors
///
/// [`Error::Behavior`] when the pair's profile fails validation.
pub fn characterize_pair(pair: &AppInputPair<'_>, config: &RunConfig) -> Result<CharRecord> {
    let behavior = &pair.input.behavior;
    let prepare =
        crate::telemetry::stage("stage/prepare", crate::telemetry::stage_prepare_micros());
    let (trace, hints) = prepared_run(pair, config)?;
    drop(prepare);
    let sim_ops = trace.remaining();

    // A third of the trace warms caches and predictor so steady-state
    // rates are measured, mirroring the paper's minutes-long executions.
    let warmup = sim_ops / 3;
    let mut plan = ExecPlan::new().hints(hints).warmup(warmup);
    plan.sampler = config.sampler;
    let mut engine = Engine::new(&config.system);
    let simulate =
        crate::telemetry::stage("stage/simulate", crate::telemetry::stage_simulate_micros());
    // The generator streams straight into the engine's batch arena — no
    // per-op iterator hand-off on the hot path.
    let session = engine.execute(trace, &plan);
    drop(simulate);
    let sim_seconds = engine.seconds(&session);
    let counted = session.count(Event::InstRetiredAny).max(1) as f64;
    let breakdown = engine.last_breakdown().expect("run just completed");
    let per_inst = |cycles: f64| cycles / counted;

    // Footprint: the OS-model sampler observes the allocation plan the same
    // way `ps -o vsz,rss` observed the real binaries (1 Hz; maxima kept).
    let growth = if behavior.store_pct > 10.0 {
        GrowthCurve::Immediate // array/stencil codes touch everything early
    } else {
        GrowthCurve::Saturating
    };
    let footprint = crate::telemetry::stage(
        "stage/footprint",
        crate::telemetry::stage_footprint_micros(),
    );
    let map = MemoryMap::from_behavior(behavior, growth);
    let mut sampler = PsSampler::new();
    sampler.sample_run(&map, 60);
    drop(footprint);

    let gib = |bytes: u64| bytes as f64 / (1u64 << 30) as f64;
    let ipc = session.ipc();
    let clock_hz = config.system.clock_ghz * 1e9;
    // instructions / (IPC x clock) is total unhalted cycles / clock; with N
    // threads the unhalted reference cycles accumulate N-fold per second of
    // wall time, so wall-clock time divides by the thread count.
    let projected_seconds = if ipc > 0.0 {
        behavior.instructions_billions * 1e9 / (ipc * clock_hz * behavior.threads.max(1) as f64)
    } else {
        0.0
    };

    crate::telemetry::pairs_characterized().inc();
    Ok(CharRecord {
        id: pair.id(),
        app: pair.app.name.clone(),
        input: pair.input.name.clone(),
        suite: pair.app.suite,
        size: pair.size,
        sim_ops,
        instructions_billions: behavior.instructions_billions,
        ipc,
        load_pct: session.load_fraction() * 100.0,
        store_pct: session.store_fraction() * 100.0,
        branch_pct: session.branch_fraction() * 100.0,
        l1_miss_pct: session.l1_miss_rate() * 100.0,
        l2_miss_pct: session.l2_miss_rate() * 100.0,
        l3_miss_pct: session.l3_miss_rate() * 100.0,
        mispredict_pct: session.mispredict_rate() * 100.0,
        rss_gib: gib(sampler.max_rss_bytes()),
        vsz_gib: gib(sampler.max_vsz_bytes()),
        cpi_base: per_inst(breakdown.base),
        cpi_branch: per_inst(breakdown.branch),
        cpi_memory: per_inst(breakdown.memory),
        cpi_frontend: per_inst(breakdown.frontend),
        sim_seconds,
        projected_seconds,
        session,
    })
}

/// Characterizes every input of every application at `size`, in parallel.
///
/// # Errors
///
/// [`Error::Characterization`] listing every pair that still failed after
/// the scheduler's retry.
pub fn characterize_suite(
    apps: &[AppProfile],
    size: InputSize,
    config: &RunConfig,
) -> Result<Vec<CharRecord>> {
    characterize_suite_with(apps, size, config, None)
}

/// [`characterize_suite`] with an optional result cache.
///
/// # Errors
///
/// [`Error::Characterization`] listing every pair that still failed after
/// the scheduler's retry.
pub fn characterize_suite_with(
    apps: &[AppProfile],
    size: InputSize,
    config: &RunConfig,
    cache: Option<&CacheContext>,
) -> Result<Vec<CharRecord>> {
    let pairs: Vec<AppInputPair<'_>> = apps.iter().flat_map(|app| app.pairs(size)).collect();
    characterize_pairs_with(&pairs, config, cache)
}

/// Characterizes an explicit pair list in parallel, preserving order.
///
/// # Errors
///
/// [`Error::Characterization`] if any pair still fails after the
/// scheduler's retry, listing every failed pair. Callers that want partial
/// results instead use [`characterize_pairs_report`].
pub fn characterize_pairs(
    pairs: &[AppInputPair<'_>],
    config: &RunConfig,
) -> Result<Vec<CharRecord>> {
    characterize_pairs_with(pairs, config, None)
}

/// [`characterize_pairs`] with an optional result cache.
///
/// # Errors
///
/// [`Error::Characterization`] if any pair still fails after the
/// scheduler's retry.
pub fn characterize_pairs_with(
    pairs: &[AppInputPair<'_>],
    config: &RunConfig,
    cache: Option<&CacheContext>,
) -> Result<Vec<CharRecord>> {
    characterize_pairs_report(pairs, config, cache, |_| {})
        .into_results()
        .map_err(|failures| Error::Characterization {
            failures,
            total: pairs.len(),
        })
}

/// Fault-tolerant parallel characterization: every pair runs on the
/// [`Scheduler`] (panic-isolated, retried once), optionally cache-first, and
/// the full [`RunReport`] comes back — partial results survive individual
/// failures. `progress` fires after each pair settles (from worker threads).
///
/// Per-pair errors are re-raised as panics inside the scheduler's workers so
/// its isolation and retry machinery applies uniformly; they come back as
/// [`simstore::JobFailure`] entries, not unwinds.
pub fn characterize_pairs_report<P: Fn(Progress) + Sync>(
    pairs: &[AppInputPair<'_>],
    config: &RunConfig,
    cache: Option<&CacheContext>,
    progress: P,
) -> RunReport<CharRecord> {
    Scheduler::available().run(
        pairs.len(),
        |i| pairs[i].id(),
        |i| {
            let run = match cache {
                Some(ctx) => characterize_pair_cached(&pairs[i], config, ctx),
                None => characterize_pair(&pairs[i], config),
            };
            run.unwrap_or_else(|e| panic!("{e}"))
        },
        progress,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_synth::cpu2017;

    fn quick() -> RunConfig {
        RunConfig::quick()
    }

    #[test]
    fn record_fields_are_consistent() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let r = characterize_pair(pair, &quick()).unwrap();
        assert_eq!(r.id, "505.mcf_r");
        assert_eq!(r.suite, Suite::RateInt);
        assert!(r.ipc > 0.0);
        assert!(r.sim_ops > 0);
        assert!(r.sim_seconds > 0.0);
        assert!(r.projected_seconds > 0.0);
        // Mix percentages should be near the profile.
        let b = &pair.input.behavior;
        assert!(
            (r.load_pct - b.load_pct).abs() < 2.0,
            "loads {} vs {}",
            r.load_pct,
            b.load_pct
        );
        assert!((r.branch_pct - b.branch_pct).abs() < 2.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let app = cpu2017::app("541.leela_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let a = characterize_pair(pair, &quick()).unwrap();
        let b = characterize_pair(pair, &quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn footprint_matches_profile_declaration() {
        let app = cpu2017::app("657.xz_s").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let r = characterize_pair(pair, &quick()).unwrap();
        let b = &pair.input.behavior;
        assert!((r.rss_gib - b.rss_gib).abs() / b.rss_gib < 0.02);
        assert!((r.vsz_gib - b.vsz_gib).abs() / b.vsz_gib < 0.02);
    }

    #[test]
    fn parallel_matches_serial_order() {
        let app = cpu2017::app("502.gcc_r").unwrap();
        let pairs = app.pairs(InputSize::Ref);
        let config = quick();
        let parallel = characterize_pairs(&pairs, &config).unwrap();
        assert_eq!(parallel.len(), 5);
        for (pair, record) in pairs.iter().zip(&parallel) {
            let serial = characterize_pair(pair, &config).unwrap();
            assert_eq!(&serial, record);
        }
    }

    /// A roster with one deliberately broken profile: the micro-op mix sums
    /// past 100%, which `TraceGenerator::new` rejects.
    fn poisoned_apps() -> Vec<workload_synth::profile::AppProfile> {
        use workload_synth::profile::{AppProfile, Behavior, InputProfile};
        let bad_behavior = Behavior {
            load_pct: 90.0,
            store_pct: 20.0,
            ..Default::default()
        };
        let bad_input = InputProfile {
            name: "impossible".into(),
            behavior: bad_behavior,
        };
        let bad = AppProfile {
            name: "999.broken_r".into(),
            suite: Suite::RateInt,
            test: vec![bad_input.clone()],
            train: vec![bad_input.clone()],
            reference: vec![bad_input],
        };
        vec![
            cpu2017::app("505.mcf_r").unwrap(),
            bad,
            cpu2017::app("541.leela_r").unwrap(),
        ]
    }

    #[test]
    fn panicking_pair_is_reported_and_rest_complete() {
        let apps = poisoned_apps();
        let pairs: Vec<AppInputPair<'_>> =
            apps.iter().flat_map(|a| a.pairs(InputSize::Ref)).collect();
        assert_eq!(pairs.len(), 3);
        let report = characterize_pairs_report(&pairs, &quick(), None, |_| {});
        assert_eq!(report.failures.len(), 1, "exactly the broken pair fails");
        assert_eq!(report.failures[0].index, 1);
        assert_eq!(report.failures[0].label, "999.broken_r");
        assert!(report.results[1].is_none());
        let survivors: Vec<&CharRecord> = report.results.iter().flatten().collect();
        assert_eq!(survivors.len(), 2, "healthy pairs still produce records");
        assert_eq!(survivors[0].id, "505.mcf_r");
        assert_eq!(survivors[1].id, "541.leela_r");
    }

    #[test]
    fn strict_api_returns_failure_list() {
        let apps = poisoned_apps();
        let pairs: Vec<AppInputPair<'_>> =
            apps.iter().flat_map(|a| a.pairs(InputSize::Ref)).collect();
        let err = characterize_pairs(&pairs, &quick()).unwrap_err();
        match &err {
            Error::Characterization { failures, total } => {
                assert_eq!(*total, 3);
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].label, "999.broken_r");
            }
            other => panic!("expected Characterization, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("1 of 3 pair(s)"), "{text}");
        assert!(text.contains("999.broken_r"), "{text}");
    }

    #[test]
    fn sampler_attaches_timeline_without_changing_counts() {
        let app = cpu2017::app("505.mcf_r").unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let plain = characterize_pair(pair, &quick()).unwrap();
        let sampled_config = quick().with_sampler(SamplerConfig::every(10_000));
        let mut sampled = characterize_pair(pair, &sampled_config).unwrap();
        let timeline = sampled.session.take_timeline().expect("timeline recorded");
        assert_eq!(timeline.total(), {
            let mut t = plain.session.clone();
            let _ = t.take_timeline();
            t
        });
        assert_eq!(plain, sampled, "sampling must not perturb the counters");
    }

    #[test]
    fn cached_pairs_match_uncached_pairs() {
        let root =
            std::env::temp_dir().join(format!("workchar-pairs-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = crate::cache::CacheContext::open(&root).unwrap();
        let app = cpu2017::app("525.x264_r").unwrap();
        let pairs = app.pairs(InputSize::Ref);
        let config = quick();
        let uncached = characterize_pairs(&pairs, &config).unwrap();
        let cold = characterize_pairs_with(&pairs, &config, Some(&cache)).unwrap();
        let warm = characterize_pairs_with(&pairs, &config, Some(&cache)).unwrap();
        assert_eq!(uncached, cold, "caching must not change results");
        assert_eq!(cold, warm);
        let snap = cache.stats.snapshot();
        assert_eq!(snap.misses, pairs.len() as u64);
        assert_eq!(snap.hits, pairs.len() as u64);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn suite_characterization_counts() {
        let apps = vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("525.x264_r").unwrap(),
        ];
        let records = characterize_suite(&apps, InputSize::Ref, &quick()).unwrap();
        assert_eq!(records.len(), 1 + 3);
    }

    #[test]
    fn x264_faster_than_mcf() {
        // The paper's headline int contrast (Fig. 1).
        let config = quick();
        let mcf = cpu2017::app("505.mcf_r").unwrap();
        let x264 = cpu2017::app("525.x264_r").unwrap();
        let r_mcf = characterize_pair(&mcf.pairs(InputSize::Ref)[0], &config).unwrap();
        let r_x264 = characterize_pair(&x264.pairs(InputSize::Ref)[0], &config).unwrap();
        assert!(
            r_x264.ipc > 2.0 * r_mcf.ipc,
            "x264 {} vs mcf {}",
            r_x264.ipc,
            r_mcf.ipc
        );
    }

    #[test]
    fn branch_kind_fracs_sum_to_one() {
        let app = cpu2017::app("500.perlbench_r").unwrap();
        let r = characterize_pair(&app.pairs(InputSize::Ref)[0], &quick()).unwrap();
        let sum: f64 = [
            Event::BrInstExecAllConditional,
            Event::BrInstExecAllDirectJmp,
            Event::BrInstExecAllDirectNearCall,
            Event::BrInstExecAllIndirectJumpNonCallRet,
            Event::BrInstExecAllIndirectNearReturn,
        ]
        .iter()
        .map(|&e| r.branch_kind_frac(e))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn csv_export_is_rectangular() {
        let app = cpu2017::app("541.leela_r").unwrap();
        let r = characterize_pair(&app.pairs(InputSize::Ref)[0], &quick()).unwrap();
        assert_eq!(r.csv_row().len(), CharRecord::CSV_HEADER.len());
        let csv = records_csv(&[r]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and row must have the same arity"
        );
        assert!(lines[0].starts_with("id,app,input,suite,size"));
    }

    #[test]
    fn projected_billions_tracks_mix() {
        let app = cpu2017::app("519.lbm_r").unwrap();
        let r = characterize_pair(&app.pairs(InputSize::Ref)[0], &quick()).unwrap();
        let loads_b = r.projected_billions(Event::MemUopsRetiredAllLoads);
        let expected = r.instructions_billions * r.load_pct / 100.0;
        assert!((loads_b - expected).abs() / expected < 0.05);
    }
}
