//! PCA redundancy analysis — Section V-A of the paper (Figs. 7–8).
//!
//! The 20 characteristics of every application–input pair are standardized
//! and reduced with PCA; the paper keeps the first four components (76.3% of
//! total variance) and reads factor loadings to interpret them.

use stat_analysis::matrix::Matrix;
use stat_analysis::pca::Pca;
use stat_analysis::StatsError;

use crate::characterize::CharRecord;
use crate::metrics::{characteristic_rows, CHARACTERISTICS};

/// The fraction of variance the paper's four components captured; we keep
/// the smallest component count reaching it.
pub const PAPER_VARIANCE_TARGET: f64 = 0.76;

/// Result of the redundancy analysis over a record set.
#[derive(Debug, Clone)]
pub struct RedundancyAnalysis {
    /// Pair ids, row-aligned with [`RedundancyAnalysis::scores`].
    pub ids: Vec<String>,
    /// The fitted PCA model.
    pub pca: Pca,
    /// Number of retained components.
    pub n_components: usize,
    /// Cumulative explained variance of the retained components.
    pub explained: f64,
    /// `[pairs × n_components]` score matrix.
    pub scores: Matrix,
    /// `[20 × n_components]` factor loadings (Fig. 8).
    pub loadings: Matrix,
}

impl RedundancyAnalysis {
    /// Runs the full analysis: extract Table VIII characteristics,
    /// standardize, fit PCA, retain components covering `variance_target`,
    /// and compute scores and loadings.
    ///
    /// # Errors
    ///
    /// Returns a [`StatsError`] if there are fewer than two records or the
    /// decomposition fails.
    pub fn fit(records: &[CharRecord], variance_target: f64) -> Result<Self, StatsError> {
        let rows = characteristic_rows(records);
        let data = Matrix::from_rows(&rows)?;
        let pca = Pca::fit(&data)?;
        let n_components = pca.n_components_for(variance_target)?.clamp(2, 6);
        let explained = pca.cumulative_explained_variance()[n_components - 1];
        let scores = pca.scores(&data, n_components)?;
        let loadings = pca.loadings(n_components)?;
        Ok(RedundancyAnalysis {
            ids: records.iter().map(|r| r.id.clone()).collect(),
            pca,
            n_components,
            explained,
            scores,
            loadings,
        })
    }

    /// Convenience: [`RedundancyAnalysis::fit`] at the paper's 76% target.
    ///
    /// # Errors
    ///
    /// Same as [`RedundancyAnalysis::fit`].
    pub fn fit_paper(records: &[CharRecord]) -> Result<Self, StatsError> {
        RedundancyAnalysis::fit(records, PAPER_VARIANCE_TARGET)
    }

    /// Score rows as plain vectors (clustering input).
    pub fn score_rows(&self) -> Vec<Vec<f64>> {
        self.scores.iter_rows().map(|r| r.to_vec()).collect()
    }

    /// The characteristics with the strongest absolute loading on component
    /// `k`, descending — the paper's "dominated by" reading of Fig. 8.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.n_components`.
    pub fn dominant_characteristics(&self, k: usize, top: usize) -> Vec<(&'static str, f64)> {
        assert!(k < self.n_components, "component {k} out of range");
        let mut pairs: Vec<(&'static str, f64)> = CHARACTERISTICS
            .iter()
            .enumerate()
            .map(|(v, c)| (c.name, self.loadings[(v, k)]))
            .collect();
        pairs.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite loadings"));
        pairs.truncate(top);
        pairs
    }

    /// Varimax-rotated loadings (extension): the same factor space with a
    /// simpler structure, sharpening the paper's "dominated by" reading of
    /// Fig. 8.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] from the rotation (needs >= 2 components).
    pub fn rotated_loadings(&self) -> Result<Matrix, StatsError> {
        Ok(stat_analysis::rotation::varimax(&self.loadings)?.loadings)
    }

    /// Euclidean distance between two pairs' retained-PC coordinates; the
    /// paper's similarity metric.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn pc_distance(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.scores.row(i), self.scores.row(j));
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_suite, RunConfig};
    use workload_synth::cpu2017;
    use workload_synth::profile::InputSize;

    fn sample_records() -> Vec<CharRecord> {
        let apps = vec![
            cpu2017::app("505.mcf_r").unwrap(),
            cpu2017::app("519.lbm_r").unwrap(),
            cpu2017::app("525.x264_r").unwrap(),
            cpu2017::app("548.exchange2_r").unwrap(),
            cpu2017::app("603.bwaves_s").unwrap(),
            cpu2017::app("607.cactuBSSN_s").unwrap(),
        ];
        characterize_suite(&apps, InputSize::Ref, &RunConfig::quick()).unwrap()
    }

    #[test]
    fn analysis_shape() {
        let records = sample_records();
        let a = RedundancyAnalysis::fit_paper(&records).unwrap();
        assert_eq!(a.ids.len(), records.len());
        assert_eq!(a.scores.shape(), (records.len(), a.n_components));
        assert_eq!(a.loadings.shape(), (20, a.n_components));
        assert!(a.explained >= 0.5, "explained {}", a.explained);
        assert!((2..=6).contains(&a.n_components));
    }

    #[test]
    fn bwaves_inputs_closer_than_cactu() {
        // Table IX's validation: the two bwaves_s inputs must sit much
        // closer in PC space than either sits to cactuBSSN_s.
        let records = sample_records();
        let a = RedundancyAnalysis::fit_paper(&records).unwrap();
        let idx = |id: &str| a.ids.iter().position(|x| x == id).unwrap();
        let b1 = idx("603.bwaves_s-in1");
        let b2 = idx("603.bwaves_s-in2");
        let c = idx("607.cactuBSSN_s");
        let d_same = a.pc_distance(b1, b2);
        let d_diff = a.pc_distance(b1, c).min(a.pc_distance(b2, c));
        assert!(
            d_same * 2.0 < d_diff,
            "bwaves pair distance {d_same} vs cactu distance {d_diff}"
        );
    }

    #[test]
    fn dominant_characteristics_sorted_by_magnitude() {
        let records = sample_records();
        let a = RedundancyAnalysis::fit_paper(&records).unwrap();
        let dom = a.dominant_characteristics(0, 5);
        assert_eq!(dom.len(), 5);
        assert!(dom.windows(2).all(|w| w[0].1.abs() >= w[1].1.abs()));
    }

    #[test]
    fn score_rows_match_matrix() {
        let records = sample_records();
        let a = RedundancyAnalysis::fit_paper(&records).unwrap();
        let rows = a.score_rows();
        assert_eq!(rows.len(), records.len());
        assert_eq!(rows[0].len(), a.n_components);
        assert_eq!(rows[2][1], a.scores[(2, 1)]);
    }

    #[test]
    fn rotated_loadings_preserve_communalities() {
        let records = sample_records();
        let a = RedundancyAnalysis::fit_paper(&records).unwrap();
        let rotated = a.rotated_loadings().unwrap();
        assert_eq!(rotated.shape(), a.loadings.shape());
        for v in 0..20 {
            let h0: f64 = (0..a.n_components)
                .map(|k| a.loadings[(v, k)].powi(2))
                .sum();
            let h1: f64 = (0..a.n_components).map(|k| rotated[(v, k)].powi(2)).sum();
            assert!((h0 - h1).abs() < 1e-9, "variable {v}");
        }
    }

    #[test]
    fn too_few_records_error() {
        let records = sample_records();
        assert!(RedundancyAnalysis::fit_paper(&records[..1]).is_err());
    }
}
