//! Structured observability for the characterization pipeline.
//!
//! The paper's workflow is a long batch pipeline (generate traces →
//! simulate → aggregate → analyze); when a reproduction run is slow or
//! wrong, the first question is always *where the time went*. This crate
//! provides the span/event layer the ROADMAP's observability item calls
//! for:
//!
//! - [`Recorder`] — a cheap, clonable, thread-safe handle. Disabled
//!   recorders are no-ops; enabled ones collect in-memory
//!   [`SpanSummary`] rows (for the end-of-run table) and optionally
//!   append JSON Lines to a sink file.
//! - [`Span`] — a scope guard measuring wall time for one pipeline stage,
//!   with free-form key/value fields (`ops simulated`, `cache hits`, …)
//!   and the process memory high-water mark attached at finish.
//! - [`validate_events`] / the `events-validate` binary — strict schema
//!   checking of an emitted JSONL file, used by CI's smoke job.
//!
//! # Event schema (version [`SCHEMA`])
//!
//! Every line is one JSON object:
//!
//! ```json
//! {"schema":1,"kind":"span","name":"collect/cpu2017","wall_ms":12.345,
//!  "mem_hwm_bytes":104857600,"fields":{"records":47,"sim_ops":8800000}}
//! ```
//!
//! - `schema` (required, number): the schema version, currently `1`.
//! - `kind` (required): `"span"` (timed stage) or `"event"` (instant).
//! - `name` (required, string): stage name, `/`-separated hierarchy.
//! - `wall_ms` (spans only, number ≥ 0): stage wall-clock duration.
//! - `mem_hwm_bytes` (optional, number): process peak RSS at finish.
//! - `fields` (optional, object): stage-specific scalars/strings.

pub mod json;

use std::fmt;
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version of the JSONL event schema this crate emits and validates.
pub const SCHEMA: u32 = 1;

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, bytes, ops).
    U64(u64),
    /// A float (rates, ratios, milliseconds).
    F64(f64),
    /// A string (pair ids, paths, outcomes).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl FieldValue {
    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format!("{v}"),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Str(s) => format!("\"{}\"", json::escape(s)),
            FieldValue::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.2}"),
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// The completed record of one [`Span`], kept in memory for the
/// end-of-run summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Stage name.
    pub name: String,
    /// Wall-clock duration in milliseconds; `None` for stat rows
    /// ([`Recorder::stat`]), which have no duration of their own.
    pub wall_ms: Option<f64>,
    /// Process peak RSS when the span finished, if known.
    pub mem_hwm_bytes: Option<u64>,
    /// Stage-specific fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

struct Inner {
    summaries: Mutex<Vec<SpanSummary>>,
    sink: Option<Mutex<LineWriter<File>>>,
}

/// A clonable, thread-safe handle for recording spans and events.
///
/// All clones share the same summary list and sink. A recorder built with
/// [`Recorder::disabled`] records nothing and costs nothing.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field(
                "sink",
                &self.inner.as_ref().is_some_and(|i| i.sink.is_some()),
            )
            .finish()
    }
}

impl Recorder {
    /// A recorder that records nothing (the default for library callers).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder collecting in-memory summaries only (no sink file).
    pub fn in_memory() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                summaries: Mutex::new(Vec::new()),
                sink: None,
            })),
        }
    }

    /// A recorder collecting summaries *and* appending JSONL to `path`
    /// (truncating any existing file; parent directories are created).
    pub fn to_path(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Recorder {
            inner: Some(Arc::new(Inner {
                summaries: Mutex::new(Vec::new()),
                sink: Some(Mutex::new(LineWriter::new(file))),
            })),
        })
    }

    /// Whether this recorder records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timed span. Finish it explicitly with [`Span::finish`] or
    /// let it record on drop.
    pub fn span(&self, name: &str) -> Span {
        Span {
            recorder: self.clone(),
            name: name.to_string(),
            start: Instant::now(),
            fields: Vec::new(),
            finished: false,
        }
    }

    /// Records an instantaneous event with the given fields.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if self.inner.is_none() {
            return;
        }
        let owned: Vec<(String, FieldValue)> = fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        self.write_line("event", name, None, None, &owned);
    }

    /// Records an end-of-run statistic row: it appears in the summary
    /// table with no wall time (rendered as `-`) and streams to the sink
    /// as an `event` record, which legally carries no `wall_ms`.
    pub fn stat(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let owned: Vec<(String, FieldValue)> = fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        inner
            .summaries
            .lock()
            .expect("summary lock")
            .push(SpanSummary {
                name: name.to_string(),
                wall_ms: None,
                mem_hwm_bytes: None,
                fields: owned.clone(),
            });
        self.write_line("event", name, None, None, &owned);
    }

    /// Snapshot of all finished span summaries, in completion order.
    pub fn summaries(&self) -> Vec<SpanSummary> {
        match &self.inner {
            Some(inner) => inner.summaries.lock().expect("summary lock").clone(),
            None => Vec::new(),
        }
    }

    /// Renders the finished spans as an aligned text table — the
    /// end-of-run summary the binaries print.
    pub fn render_summary(&self) -> String {
        let summaries = self.summaries();
        if summaries.is_empty() {
            return String::new();
        }
        let name_w = summaries
            .iter()
            .map(|s| s.name.len())
            .chain(["stage".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>12}  {:>12}  details\n",
            "stage", "wall_ms", "peak_rss_mb"
        ));
        for s in &summaries {
            let wall = match s.wall_ms {
                Some(ms) => format!("{ms:.3}"),
                None => "-".to_string(),
            };
            let mem = match s.mem_hwm_bytes {
                Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
                None => "-".to_string(),
            };
            let details = s
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:<name_w$}  {:>12}  {:>12}  {}\n",
                s.name, wall, mem, details
            ));
        }
        out
    }

    fn record_span(
        &self,
        name: &str,
        wall_ms: f64,
        mem_hwm_bytes: Option<u64>,
        fields: &[(String, FieldValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner
            .summaries
            .lock()
            .expect("summary lock")
            .push(SpanSummary {
                name: name.to_string(),
                wall_ms: Some(wall_ms),
                mem_hwm_bytes,
                fields: fields.to_vec(),
            });
        self.write_line("span", name, Some(wall_ms), mem_hwm_bytes, fields);
    }

    fn write_line(
        &self,
        kind: &str,
        name: &str,
        wall_ms: Option<f64>,
        mem_hwm_bytes: Option<u64>,
        fields: &[(String, FieldValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        let Some(sink) = &inner.sink else { return };
        let mut line = format!(
            "{{\"schema\":{SCHEMA},\"kind\":\"{kind}\",\"name\":\"{}\"",
            json::escape(name)
        );
        if let Some(ms) = wall_ms {
            line.push_str(&format!(",\"wall_ms\":{:.3}", ms.max(0.0)));
        }
        if let Some(bytes) = mem_hwm_bytes {
            line.push_str(&format!(",\"mem_hwm_bytes\":{bytes}"));
        }
        if !fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("\"{}\":{}", json::escape(k), v.to_json()));
            }
            line.push('}');
        }
        line.push('}');
        // Logging failures must never take down a simulation run.
        let mut w = sink.lock().expect("sink lock");
        let _ = writeln!(w, "{line}");
    }
}

/// A scope guard timing one pipeline stage.
///
/// Records on [`Span::finish`] or on drop, whichever comes first.
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    name: String,
    start: Instant,
    fields: Vec<(String, FieldValue)>,
    finished: bool,
}

impl Span {
    /// Attaches a field (throughput, counts, outcome, …) to the span.
    pub fn record(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.recorder.is_enabled() {
            self.fields.push((key.to_string(), value.into()));
        }
    }

    /// Elapsed wall time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Finishes the span now and returns its wall time in milliseconds.
    pub fn finish(mut self) -> f64 {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> f64 {
        let wall_ms = self.elapsed_ms();
        if !self.finished {
            self.finished = true;
            if self.recorder.is_enabled() {
                self.recorder.record_span(
                    &self.name,
                    wall_ms,
                    mem_high_water_bytes(),
                    &self.fields,
                );
            }
        }
        wall_ms
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// The process's peak resident set size in bytes, if the platform exposes
/// it (`VmHWM` in `/proc/self/status` on Linux).
pub fn mem_high_water_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Counts of the records in a validated events file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventsSummary {
    /// `kind == "span"` records.
    pub spans: usize,
    /// `kind == "event"` records.
    pub events: usize,
}

impl EventsSummary {
    /// Total records of any kind.
    pub fn total(&self) -> usize {
        self.spans + self.events
    }
}

/// Validates JSONL event text with coded diagnostics (rules E001–E012),
/// collecting *every* violation instead of stopping at the first.
///
/// `object` names the stream in spans (usually the file path); each
/// diagnostic's span is `"{object}:{line}"` plus the offending member.
/// Beyond the per-line schema checks that [`validate_events`] performs,
/// this audit treats an empty stream (E010) and a truncated final line
/// (E011) as errors — an events file CI never wrote should fail its gate,
/// not vacuously pass it.
pub fn check_events(object: &str, input: &str) -> (EventsSummary, simcheck::Report) {
    use simcheck::{codes, Diagnostic, Report, Span};
    let mut summary = EventsSummary::default();
    let mut report = Report::new();
    let mut non_blank = 0usize;
    let mut last_lineno = 0usize;
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        last_lineno = lineno;
        if line.trim().is_empty() {
            continue;
        }
        non_blank += 1;
        let at = format!("{object}:{lineno}");
        let before = report.len();
        let value = match json::parse(line) {
            Ok(value) => value,
            Err(e) => {
                report.push(Diagnostic::new(
                    &codes::E001,
                    Span::object(at),
                    e.to_string(),
                ));
                continue;
            }
        };
        if value.as_object().is_none() {
            report.push(Diagnostic::new(
                &codes::E002,
                Span::object(at),
                "record is not a JSON object",
            ));
            continue;
        }
        match value.get("schema").map(json::Value::as_u64) {
            None | Some(None) => {
                report.push(Diagnostic::new(
                    &codes::E003,
                    Span::field(&at, "schema"),
                    "missing numeric \"schema\"",
                ));
            }
            Some(Some(schema)) if schema > SCHEMA as u64 => {
                report.push(Diagnostic::new(
                    &codes::E012,
                    Span::field(&at, "schema"),
                    format!(
                        "schema version {schema} is newer than supported {SCHEMA}; \
                         upgrade the reader"
                    ),
                ));
            }
            Some(Some(schema)) if schema != SCHEMA as u64 => {
                report.push(Diagnostic::new(
                    &codes::E004,
                    Span::field(&at, "schema"),
                    format!("schema version {schema} (expected {SCHEMA})"),
                ));
            }
            Some(Some(_)) => {}
        }
        let kind = value.get("kind").and_then(json::Value::as_str);
        let name = value.get("name").and_then(json::Value::as_str);
        if kind.is_none() {
            report.push(Diagnostic::new(
                &codes::E005,
                Span::field(&at, "kind"),
                "missing string \"kind\"",
            ));
        }
        match name {
            None => report.push(Diagnostic::new(
                &codes::E005,
                Span::field(&at, "name"),
                "missing string \"name\"",
            )),
            Some("") => report.push(Diagnostic::new(
                &codes::E005,
                Span::field(&at, "name"),
                "empty \"name\"",
            )),
            Some(_) => {}
        }
        let mut counted_kind = None;
        match kind {
            Some("span") => {
                match value.get("wall_ms").and_then(json::Value::as_f64) {
                    Some(wall) if !wall.is_nan() && wall >= 0.0 => {}
                    Some(wall) => report.push(Diagnostic::new(
                        &codes::E006,
                        Span::field(&at, "wall_ms"),
                        format!("invalid wall_ms {wall}"),
                    )),
                    None => report.push(Diagnostic::new(
                        &codes::E006,
                        Span::field(&at, "wall_ms"),
                        "span without numeric \"wall_ms\"",
                    )),
                }
                counted_kind = Some("span");
            }
            Some("event") => counted_kind = Some("event"),
            Some(other) => report.push(Diagnostic::new(
                &codes::E007,
                Span::field(&at, "kind"),
                format!("unknown kind \"{other}\""),
            )),
            None => {}
        }
        if let Some(mem) = value.get("mem_hwm_bytes") {
            if mem.as_u64().is_none() {
                report.push(Diagnostic::new(
                    &codes::E008,
                    Span::field(&at, "mem_hwm_bytes"),
                    "mem_hwm_bytes is not a non-negative whole number",
                ));
            }
        }
        if let Some(fields) = value.get("fields") {
            if fields.as_object().is_none() {
                report.push(Diagnostic::new(
                    &codes::E009,
                    Span::field(&at, "fields"),
                    "\"fields\" is not an object",
                ));
            }
        }
        if report.len() == before {
            match counted_kind {
                Some("span") => summary.spans += 1,
                Some("event") => summary.events += 1,
                _ => {}
            }
        }
    }
    if non_blank == 0 {
        report.push(Diagnostic::new(
            &codes::E010,
            Span::object(object),
            "event stream contains no records",
        ));
    }
    if !input.is_empty() && !input.ends_with('\n') {
        report.push(Diagnostic::new(
            &codes::E011,
            Span::object(format!("{object}:{last_lineno}")),
            "final line is truncated (no trailing newline)",
        ));
    }
    (summary, report)
}

/// A failure from [`validate_events`], typed so callers can distinguish a
/// malformed stream from one written by a *newer* producer.
///
/// Both variants render as `line {n}: …` (the historical string format), so
/// message-based consumers keep working; exit-code consumers match on the
/// variant instead (`events-validate` exits 2 on [`SchemaTooNew`],
/// 1 on [`Malformed`]).
///
/// [`SchemaTooNew`]: ValidateError::SchemaTooNew
/// [`Malformed`]: ValidateError::Malformed
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A line violating the schema it declares.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// A line declaring a schema version above [`SCHEMA`]: the file comes
    /// from a newer binary, and "valid" cannot be decided by this reader.
    SchemaTooNew {
        /// 1-based line number.
        line: usize,
        /// The version the line declares.
        found: u64,
        /// The newest version this reader understands ([`SCHEMA`]).
        supported: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            ValidateError::SchemaTooNew {
                line,
                found,
                supported,
            } => write!(
                f,
                "line {line}: schema version {found} is newer than supported {supported}; \
                 upgrade the reader"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates JSONL event text against the versioned schema (see the
/// crate-level docs). Returns per-kind record counts, or a typed
/// [`ValidateError`] naming the first offending line.
///
/// This is the legacy first-failure API; [`check_events`] performs the same
/// per-line checks with coded diagnostics, collects every violation, and
/// additionally rejects empty and truncated streams.
pub fn validate_events(input: &str) -> Result<EventsSummary, ValidateError> {
    let malformed = |line: usize, message: String| ValidateError::Malformed { line, message };
    let mut summary = EventsSummary::default();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| malformed(lineno, e.to_string()))?;
        if value.as_object().is_none() {
            return Err(malformed(lineno, "record is not a JSON object".to_string()));
        }
        let schema = value
            .get("schema")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| malformed(lineno, "missing numeric \"schema\"".to_string()))?;
        if schema > SCHEMA as u64 {
            return Err(ValidateError::SchemaTooNew {
                line: lineno,
                found: schema,
                supported: SCHEMA,
            });
        }
        if schema != SCHEMA as u64 {
            return Err(malformed(
                lineno,
                format!("schema version {schema} (expected {SCHEMA})"),
            ));
        }
        let kind = value
            .get("kind")
            .and_then(json::Value::as_str)
            .ok_or_else(|| malformed(lineno, "missing string \"kind\"".to_string()))?;
        let name = value
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| malformed(lineno, "missing string \"name\"".to_string()))?;
        if name.is_empty() {
            return Err(malformed(lineno, "empty \"name\"".to_string()));
        }
        match kind {
            "span" => {
                let wall = value
                    .get("wall_ms")
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| {
                        malformed(lineno, "span without numeric \"wall_ms\"".to_string())
                    })?;
                if wall.is_nan() || wall < 0.0 {
                    return Err(malformed(lineno, format!("invalid wall_ms {wall}")));
                }
                summary.spans += 1;
            }
            "event" => summary.events += 1,
            other => return Err(malformed(lineno, format!("unknown kind \"{other}\""))),
        }
        if let Some(mem) = value.get("mem_hwm_bytes") {
            if mem.as_u64().is_none() {
                return Err(malformed(
                    lineno,
                    "mem_hwm_bytes is not a whole number".to_string(),
                ));
            }
        }
        if let Some(fields) = value.get("fields") {
            if fields.as_object().is_none() {
                return Err(malformed(lineno, "\"fields\" is not an object".to_string()));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("perfmon-test-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let mut span = r.span("noop");
        span.record("x", 1u64);
        span.finish();
        r.event("e", &[("k", FieldValue::Bool(true))]);
        assert!(r.summaries().is_empty());
        assert!(r.render_summary().is_empty());
    }

    #[test]
    fn in_memory_recorder_collects_summaries() {
        let r = Recorder::in_memory();
        let mut span = r.span("stage/one");
        span.record("records", 12usize);
        span.record("rate", 1.5f64);
        span.finish();
        {
            let _auto = r.span("stage/two"); // records via Drop
        }
        let summaries = r.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].name, "stage/one");
        assert_eq!(
            summaries[0].fields[0],
            ("records".to_string(), FieldValue::U64(12))
        );
        assert!(summaries[0].wall_ms.expect("span has wall time") >= 0.0);
        let table = r.render_summary();
        assert!(table.contains("stage/one"));
        assert!(table.contains("stage/two"));
        assert!(table.contains("records=12"));
    }

    #[test]
    fn stat_rows_render_without_wall_time() {
        let r = Recorder::in_memory();
        r.span("collect").finish();
        r.stat(
            "cache",
            &[("hits", FieldValue::U64(9)), ("misses", FieldValue::U64(1))],
        );
        let summaries = r.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[1].name, "cache");
        assert_eq!(summaries[1].wall_ms, None);
        assert_eq!(summaries[1].mem_hwm_bytes, None);
        let table = r.render_summary();
        let cache_row = table
            .lines()
            .find(|l| l.starts_with("cache"))
            .expect("stat row in table");
        assert!(cache_row.contains('-'), "no wall time: {cache_row}");
        assert!(cache_row.contains("hits=9"));
    }

    #[test]
    fn stat_rows_stream_as_schema_valid_events() {
        let path = temp_path("stat");
        {
            let r = Recorder::to_path(&path).unwrap();
            r.span("collect").finish();
            r.stat("cache", &[("hits", FieldValue::U64(3))]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let summary = validate_events(&text).expect("stat line is schema-valid");
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.events, 1);
    }

    #[test]
    fn sink_emits_schema_valid_jsonl() {
        let path = temp_path("sink");
        {
            let r = Recorder::to_path(&path).unwrap();
            let mut span = r.span("collect");
            span.record("pair", "600.perlbench_s/refspeed");
            span.record("ops", 123_456u64);
            span.finish();
            r.event("cache", &[("hits", FieldValue::U64(3))]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let summary = validate_events(&text).expect("emitted lines must validate");
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.events, 1);
        // Round-trip the first line and check the fields survived.
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            first
                .get("fields")
                .and_then(|f| f.get("ops"))
                .and_then(json::Value::as_u64),
            Some(123_456)
        );
    }

    #[test]
    fn tricky_strings_survive_the_sink() {
        let path = temp_path("escape");
        {
            let r = Recorder::to_path(&path).unwrap();
            let mut span = r.span("weird \"name\"\nwith\tcontrol\u{1}chars");
            span.record("note", "back\\slash é 😀");
            span.finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 1, "escaped newline keeps one line");
        validate_events(&text).expect("escaped content must validate");
    }

    #[test]
    fn validator_rejects_bad_records() {
        assert!(validate_events("not json").is_err());
        assert!(validate_events("[1,2]").is_err());
        assert!(validate_events("{\"schema\":1,\"kind\":\"nope\",\"name\":\"x\"}").is_err());
        assert!(validate_events("{\"schema\":1,\"kind\":\"span\",\"name\":\"x\"}").is_err());
        assert!(validate_events("{\"schema\":1,\"kind\":\"event\"}").is_err());
        let err =
            validate_events("{\"schema\":1,\"kind\":\"event\",\"name\":\"ok\"}\n{\"schema\":1}\n")
                .unwrap_err();
        let rendered = err.to_string();
        assert!(
            rendered.starts_with("line 2:"),
            "error names the line: {rendered}"
        );
        assert!(matches!(err, ValidateError::Malformed { line: 2, .. }));
    }

    #[test]
    fn validator_distinguishes_newer_schemas_from_malformed_ones() {
        // A version *above* SCHEMA means "upgrade the reader", not "bad
        // file" — the typed variant carries both versions for the caller.
        let err = validate_events("{\"schema\":99,\"kind\":\"span\",\"name\":\"x\",\"wall_ms\":1}")
            .unwrap_err();
        assert_eq!(
            err,
            ValidateError::SchemaTooNew {
                line: 1,
                found: 99,
                supported: SCHEMA,
            }
        );
        assert!(err.to_string().starts_with("line 1: schema version 99"));
        // A version *below* SCHEMA is an ordinary mismatch.
        let err = validate_events("{\"schema\":0,\"kind\":\"event\",\"name\":\"x\"}").unwrap_err();
        assert!(matches!(err, ValidateError::Malformed { line: 1, .. }));
    }

    #[test]
    fn validator_accepts_empty_and_blank_lines() {
        assert_eq!(validate_events("").unwrap().total(), 0);
        assert_eq!(
            validate_events("\n{\"schema\":1,\"kind\":\"event\",\"name\":\"x\"}\n\n")
                .unwrap()
                .total(),
            1
        );
    }

    fn fired(report: &simcheck::Report) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code.code).collect()
    }

    #[test]
    fn check_events_accepts_a_clean_stream() {
        let text = "{\"schema\":1,\"kind\":\"span\",\"name\":\"a\",\"wall_ms\":1.0}\n\
                    {\"schema\":1,\"kind\":\"event\",\"name\":\"b\"}\n";
        let (summary, report) = check_events("events.jsonl", text);
        assert!(report.is_empty(), "{}", report.to_table());
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.events, 1);
    }

    #[test]
    fn check_events_collects_every_violation_with_lines() {
        let text = "not json\n\
                    {\"schema\":1,\"kind\":\"event\",\"name\":\"ok\"}\n\
                    {\"schema\":9,\"kind\":\"nope\",\"name\":\"\",\"mem_hwm_bytes\":-1}\n\
                    {\"schema\":0,\"kind\":\"event\",\"name\":\"old\"}\n";
        let (summary, report) = check_events("events.jsonl", text);
        let codes = fired(&report);
        for code in ["E001", "E004", "E005", "E007", "E008", "E012"] {
            assert!(codes.contains(&code), "expected {code} in {codes:?}");
        }
        assert_eq!(summary.total(), 1, "the clean second line still counts");
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.span.object == "events.jsonl:3"));
    }

    #[test]
    fn check_events_rejects_empty_and_truncated_streams() {
        let (_, report) = check_events("events.jsonl", "");
        assert_eq!(fired(&report), ["E010"]);
        let (_, report) = check_events("events.jsonl", "\n\n");
        assert_eq!(fired(&report), ["E010"]);
        let truncated = "{\"schema\":1,\"kind\":\"event\",\"name\":\"x\"}";
        let (summary, report) = check_events("events.jsonl", truncated);
        assert_eq!(fired(&report), ["E011"]);
        assert_eq!(summary.events, 1);
        assert!(report.failed(false), "E011 is an error");
    }

    #[test]
    fn check_events_agrees_with_legacy_validator_on_content_checks() {
        // Every line the legacy validator rejects must produce at least one
        // error diagnostic from the coded audit.
        for bad in [
            "not json",
            "[1,2]",
            "{\"schema\":99,\"kind\":\"span\",\"name\":\"x\",\"wall_ms\":1}",
            "{\"schema\":1,\"kind\":\"nope\",\"name\":\"x\"}",
            "{\"schema\":1,\"kind\":\"span\",\"name\":\"x\"}",
            "{\"schema\":1,\"kind\":\"event\"}",
        ] {
            assert!(validate_events(bad).is_err());
            let (_, report) = check_events("t", &format!("{bad}\n"));
            assert!(report.has_errors(), "coded audit missed: {bad}");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mem_high_water_is_positive_on_linux() {
        let hwm = mem_high_water_bytes().expect("/proc/self/status has VmHWM");
        assert!(hwm > 0);
    }
}
