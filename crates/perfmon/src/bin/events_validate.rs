//! Validates perfmon JSONL events files against the versioned schema.
//!
//! Usage: `events-validate [--json] <events.jsonl>...`
//!
//! Every schema violation is reported with its rule code (`E001`–`E012`)
//! and `file:line` location; all violations are collected, not just the
//! first. Empty and truncated streams are errors (E010/E011) — an events
//! file CI never wrote must fail the gate, not vacuously pass it. Exits 0
//! when every file is clean, 1 on schema violations, and 2 on usage errors
//! *or* when a file declares a schema version newer than this binary
//! supports (E012) — that case means "upgrade the reader", not "bad file",
//! so it gets the same exit class as operator error. `--json` emits the
//! machine-readable diagnostics document instead of the table.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: events-validate [--json] <events.jsonl>...");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: events-validate [--json] <events.jsonl>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    let mut too_new = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (summary, report) = perfmon::check_events(path, &text);
        if json {
            println!("{}", report.to_json());
        }
        if report.failed(false) {
            failed = true;
            too_new |= report.diagnostics().iter().any(|d| d.code.code == "E012");
            if !json {
                eprint!("{}", report.to_table());
            }
        } else if !json {
            println!(
                "{path}: ok — {} spans, {} events (schema {})",
                summary.spans,
                summary.events,
                perfmon::SCHEMA
            );
        }
    }
    if too_new {
        ExitCode::from(2)
    } else if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
