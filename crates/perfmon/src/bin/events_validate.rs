//! Validates a perfmon JSONL events file against the versioned schema.
//!
//! Usage: `events-validate <events.jsonl>...`
//!
//! Exits 0 and prints per-kind record counts when every file validates;
//! exits nonzero with the first offending file/line otherwise. CI's smoke
//! job runs this over the events emitted by a quick `reproduce` run.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: events-validate <events.jsonl>...");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match perfmon::validate_events(&text) {
            Ok(summary) => println!(
                "{path}: ok — {} spans, {} events (schema {})",
                summary.spans,
                summary.events,
                perfmon::SCHEMA
            ),
            Err(msg) => {
                eprintln!("error: {path}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
