//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The Jacobi method repeatedly applies plane rotations that zero one
//! off-diagonal element at a time. For the small symmetric matrices produced
//! by the characterization pipeline (covariance/correlation matrices of 20
//! workload characteristics) it converges in a handful of sweeps and is
//! numerically very well behaved.

use crate::matrix::Matrix;
use crate::StatsError;

/// Result of a symmetric eigendecomposition, sorted by descending eigenvalue.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns; column `k` pairs with `values[k]`.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Eigenpairs are returned sorted by descending eigenvalue, with each
/// eigenvector's sign normalized so its largest-magnitude entry is positive
/// (eigenvectors are only defined up to sign; fixing it makes results
/// reproducible).
///
/// # Errors
///
/// - [`StatsError::InvalidArgument`] if the matrix is not square/symmetric or
///   contains non-finite values.
/// - [`StatsError::NoConvergence`] if the off-diagonal mass does not vanish
///   within the sweep limit (does not happen for well-formed input).
///
/// # Example
///
/// ```
/// use stat_analysis::{eigen, matrix::Matrix};
///
/// let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let e = eigen::decompose_symmetric(&m)?;
/// assert!((e.values[0] - 3.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// # Ok::<(), stat_analysis::StatsError>(())
/// ```
pub fn decompose_symmetric(m: &Matrix) -> Result<EigenDecomposition, StatsError> {
    if m.rows() != m.cols() {
        return Err(StatsError::InvalidArgument {
            what: "eigendecomposition requires a square matrix",
        });
    }
    if !m.is_symmetric(1e-8) {
        return Err(StatsError::InvalidArgument {
            what: "eigendecomposition requires a symmetric matrix",
        });
    }
    if m.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidArgument {
            what: "matrix contains non-finite values",
        });
    }
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n)?;

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&a);
        if off < 1e-12 {
            return Ok(sorted(a, v));
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Compute the Jacobi rotation (c, s) that annihilates a[p][q].
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to A on both sides: A <- J^T A J.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if off_diagonal_norm(&a) < 1e-9 {
        // Converged to slightly looser tolerance; still acceptable.
        return Ok(sorted(a, v));
    }
    Err(StatsError::NoConvergence {
        routine: "jacobi eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            acc += a[(i, j)] * a[(i, j)];
        }
    }
    acc.sqrt()
}

fn sorted(a: Matrix, v: Matrix) -> EigenDecomposition {
    let n = a.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a[(j, j)]
            .partial_cmp(&a[(i, i)])
            .expect("eigenvalues are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n).expect("n > 0");
    for (new_col, &old_col) in order.iter().enumerate() {
        // Sign convention: largest-magnitude entry positive.
        let col: Vec<f64> = (0..n).map(|r| v[(r, old_col)]).collect();
        let sign = col
            .iter()
            .cloned()
            .max_by(|x, y| x.abs().partial_cmp(&y.abs()).expect("finite"))
            .map(|x| if x < 0.0 { -1.0 } else { 1.0 })
            .unwrap_or(1.0);
        for r in 0..n {
            vectors[(r, new_col)] = sign * col[r];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        // V * diag(values) * V^T
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n).unwrap();
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        e.vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let e = decompose_symmetric(&m).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = decompose_symmetric(&m).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for eigenvalue 3 is (1,1)/sqrt(2).
        let s = 1.0 / 2.0_f64.sqrt();
        assert!((e.vectors[(0, 0)] - s).abs() < 1e-10);
        assert!((e.vectors[(1, 0)] - s).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_matches_input() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ])
        .unwrap();
        let e = decompose_symmetric(&m).unwrap();
        let r = reconstruct(&e);
        assert!(m.max_abs_diff(&r).unwrap() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0, 0.0],
            vec![2.0, 4.0, 0.5, 0.2],
            vec![1.0, 0.5, 3.0, 0.1],
            vec![0.0, 0.2, 0.1, 2.0],
        ])
        .unwrap();
        let e = decompose_symmetric(&m).unwrap();
        let gram = e.vectors.transpose().matmul(&e.vectors).unwrap();
        let id = Matrix::identity(4).unwrap();
        assert!(gram.max_abs_diff(&id).unwrap() < 1e-9);
    }

    #[test]
    fn trace_preserved() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.3, 0.1],
            vec![0.3, 2.0, -0.4],
            vec![0.1, -0.4, 1.5],
        ])
        .unwrap();
        let e = decompose_symmetric(&m).unwrap();
        let trace = 1.0 + 2.0 + 1.5;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn values_sorted_descending() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.2, 0.0],
            vec![0.2, 9.0, 0.3],
            vec![0.0, 0.3, 4.0],
        ])
        .unwrap();
        let e = decompose_symmetric(&m).unwrap();
        assert!(e.values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(decompose_symmetric(&m).is_err());
    }

    #[test]
    fn rejects_asymmetric() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(decompose_symmetric(&m).is_err());
    }

    #[test]
    fn rejects_nan() {
        let m = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![f64::NAN, 1.0]]).unwrap();
        assert!(decompose_symmetric(&m).is_err());
    }

    #[test]
    fn handles_20x20_correlation_like_matrix() {
        // Synthetic symmetric PSD matrix: A = B^T B for random-ish B.
        let n = 20;
        let mut b = Matrix::zeros(n, n).unwrap();
        let mut x = 0.5_f64;
        for i in 0..n {
            for j in 0..n {
                x = (x * 997.0 + 31.0) % 17.0; // deterministic pseudo-random
                b[(i, j)] = x / 17.0 - 0.5;
            }
        }
        let a = b.transpose().matmul(&b).unwrap();
        let e = decompose_symmetric(&a).unwrap();
        // PSD: all eigenvalues >= -tol.
        assert!(e.values.iter().all(|&v| v > -1e-9));
        let r = reconstruct(&e);
        assert!(a.max_abs_diff(&r).unwrap() < 1e-8);
    }
}
