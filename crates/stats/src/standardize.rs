//! Column standardization (z-scores).
//!
//! PCA on workload characteristics must not let large-magnitude counters
//! (instruction counts in the billions) drown out ratios (miss rates in
//! percent), so the paper standardizes every characteristic to zero mean and
//! unit variance before analysis.

use crate::matrix::Matrix;
use crate::StatsError;

/// A fitted standardization: per-column mean and standard deviation.
///
/// Zero-variance columns are passed through centered-only (scale 1.0) so that
/// constant characteristics do not produce NaNs.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Standardizer {
    /// Fits a standardizer to the columns of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `data` has fewer than two
    /// rows (standard deviation is undefined).
    pub fn fit(data: &Matrix) -> Result<Self, StatsError> {
        if data.rows() < 2 {
            return Err(StatsError::InvalidArgument {
                what: "standardization requires at least two observations",
            });
        }
        let means = data.column_means();
        let scales = data
            .column_stds()
            .into_iter()
            .map(|s| if s > 0.0 { s } else { 1.0 })
            .collect();
        Ok(Standardizer { means, scales })
    }

    /// Applies the fitted transform: `(x - mean) / std` per column.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the column count differs
    /// from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, StatsError> {
        if data.cols() != self.means.len() {
            return Err(StatsError::DimensionMismatch {
                op: "standardize transform",
                left: (1, self.means.len()),
                right: data.shape(),
            });
        }
        let mut out = data.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] = (out[(r, c)] - self.means[c]) / self.scales[c];
            }
        }
        Ok(out)
    }

    /// Convenience: fit and transform in one call.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Standardizer::fit`].
    pub fn fit_transform(data: &Matrix) -> Result<Matrix, StatsError> {
        Standardizer::fit(data)?.transform(data)
    }

    /// The fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-column scales (standard deviations, 1.0 for constants).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_columns_have_zero_mean_unit_std() {
        let data = Matrix::from_rows(&[
            vec![1.0, 100.0],
            vec![2.0, 300.0],
            vec![3.0, 200.0],
            vec![4.0, 400.0],
        ])
        .unwrap();
        let z = Standardizer::fit_transform(&data).unwrap();
        for mean in z.column_means() {
            assert!(mean.abs() < 1e-12);
        }
        for std in z.column_stds() {
            assert!((std - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_centered_not_scaled() {
        let data = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        let z = Standardizer::fit_transform(&data).unwrap();
        for r in 0..3 {
            assert_eq!(z[(r, 0)], 0.0);
        }
    }

    #[test]
    fn transform_checks_columns() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = Standardizer::fit(&data).unwrap();
        let wrong = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(s.transform(&wrong).is_err());
    }

    #[test]
    fn fit_needs_two_rows() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Standardizer::fit(&data).is_err());
    }

    #[test]
    fn transform_applies_train_statistics_to_new_data() {
        let train = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let s = Standardizer::fit(&train).unwrap();
        let test = Matrix::from_rows(&[vec![4.0]]).unwrap();
        let z = s.transform(&test).unwrap();
        // mean 1, std sqrt(2): (4-1)/sqrt(2)
        assert!((z[(0, 0)] - 3.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }
}
