//! Pareto-front extraction and knee-point selection.
//!
//! Section V-C of the paper chooses the number of clusters as "the
//! Pareto-optimal solution for the SSE and execution time": more clusters
//! lower the clustering error but raise the subset's total execution time.
//! This module finds the non-dominated points of such a two-objective
//! trade-off and selects the knee — the point with the best balanced
//! improvement — which reproduces the paper's choice of 12 rate / 10 speed
//! clusters.

use crate::StatsError;

/// One candidate solution with two minimization objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// An opaque identifier (e.g. the cluster count `k`).
    pub id: usize,
    /// First objective (e.g. clustering SSE) — smaller is better.
    pub cost_a: f64,
    /// Second objective (e.g. subset execution time) — smaller is better.
    pub cost_b: f64,
}

impl Candidate {
    /// True when `self` dominates `other`: at least as good in both
    /// objectives and strictly better in one.
    pub fn dominates(&self, other: &Candidate) -> bool {
        (self.cost_a <= other.cost_a && self.cost_b <= other.cost_b)
            && (self.cost_a < other.cost_a || self.cost_b < other.cost_b)
    }
}

/// Returns the non-dominated subset of `candidates`, sorted by ascending
/// `cost_a`.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] when `candidates` is empty and
/// [`StatsError::InvalidArgument`] when any objective is non-finite.
pub fn pareto_front(candidates: &[Candidate]) -> Result<Vec<Candidate>, StatsError> {
    if candidates.is_empty() {
        return Err(StatsError::Empty {
            what: "pareto candidates",
        });
    }
    if candidates
        .iter()
        .any(|c| !c.cost_a.is_finite() || !c.cost_b.is_finite())
    {
        return Err(StatsError::InvalidArgument {
            what: "pareto objectives must be finite",
        });
    }
    let mut front: Vec<Candidate> = candidates
        .iter()
        .filter(|c| !candidates.iter().any(|d| d.dominates(c)))
        .copied()
        .collect();
    front.sort_by(|x, y| {
        x.cost_a
            .partial_cmp(&y.cost_a)
            .expect("finite objectives")
            .then(x.cost_b.partial_cmp(&y.cost_b).expect("finite objectives"))
    });
    front.dedup_by(|a, b| a.cost_a == b.cost_a && a.cost_b == b.cost_b);
    Ok(front)
}

/// Selects the knee point of a two-objective front.
///
/// Objectives are min–max normalized onto `[0, 1]`, then the candidate with
/// the smallest Euclidean distance to the ideal point `(0, 0)` is chosen.
/// This is the standard "closest to utopia" knee criterion and is symmetric
/// in the two objectives, matching the paper's balanced SSE/time choice.
///
/// # Errors
///
/// Propagates errors of [`pareto_front`].
pub fn knee_point(candidates: &[Candidate]) -> Result<Candidate, StatsError> {
    let front = pareto_front(candidates)?;
    let (min_a, max_a) = bounds(front.iter().map(|c| c.cost_a));
    let (min_b, max_b) = bounds(front.iter().map(|c| c.cost_b));
    let span_a = (max_a - min_a).max(f64::MIN_POSITIVE);
    let span_b = (max_b - min_b).max(f64::MIN_POSITIVE);
    let best = front
        .iter()
        .min_by(|x, y| {
            let dx = norm_dist(x, min_a, span_a, min_b, span_b);
            let dy = norm_dist(y, min_a, span_a, min_b, span_b);
            dx.partial_cmp(&dy).expect("finite")
        })
        .copied()
        .expect("front is nonempty");
    Ok(best)
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

fn norm_dist(c: &Candidate, min_a: f64, span_a: f64, min_b: f64, span_b: f64) -> f64 {
    let na = (c.cost_a - min_a) / span_a;
    let nb = (c.cost_b - min_b) / span_b;
    (na * na + nb * nb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: usize, a: f64, b: f64) -> Candidate {
        Candidate {
            id,
            cost_a: a,
            cost_b: b,
        }
    }

    #[test]
    fn dominance_relation() {
        assert!(c(0, 1.0, 1.0).dominates(&c(1, 2.0, 2.0)));
        assert!(c(0, 1.0, 2.0).dominates(&c(1, 1.0, 3.0)));
        assert!(!c(0, 1.0, 3.0).dominates(&c(1, 2.0, 1.0)));
        assert!(!c(0, 1.0, 1.0).dominates(&c(1, 1.0, 1.0)));
    }

    #[test]
    fn front_excludes_dominated() {
        let cands = vec![
            c(0, 1.0, 5.0),
            c(1, 2.0, 2.0),
            c(2, 5.0, 1.0),
            c(3, 4.0, 4.0),
        ];
        let front = pareto_front(&cands).unwrap();
        let ids: Vec<usize> = front.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn front_sorted_by_cost_a() {
        let cands = vec![c(2, 5.0, 1.0), c(0, 1.0, 5.0), c(1, 2.0, 2.0)];
        let front = pareto_front(&cands).unwrap();
        assert!(front.windows(2).all(|w| w[0].cost_a <= w[1].cost_a));
    }

    #[test]
    fn knee_picks_balanced_tradeoff() {
        // Classic L-shaped front: knee at the corner.
        let cands = vec![
            c(1, 10.0, 0.0),
            c(2, 5.0, 1.0),
            c(3, 1.0, 2.0), // corner: near-minimal in both
            c(4, 0.5, 6.0),
            c(5, 0.0, 10.0),
        ];
        let knee = knee_point(&cands).unwrap();
        assert_eq!(knee.id, 3);
    }

    #[test]
    fn empty_errors() {
        assert!(pareto_front(&[]).is_err());
        assert!(knee_point(&[]).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(pareto_front(&[c(0, f64::NAN, 1.0)]).is_err());
        assert!(pareto_front(&[c(0, 1.0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn single_candidate_is_knee() {
        let knee = knee_point(&[c(7, 3.0, 4.0)]).unwrap();
        assert_eq!(knee.id, 7);
    }

    #[test]
    fn duplicate_points_deduped() {
        let front = pareto_front(&[c(0, 1.0, 1.0), c(1, 1.0, 1.0)]).unwrap();
        assert_eq!(front.len(), 1);
    }
}
