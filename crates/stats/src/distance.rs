//! Distance metrics between observation vectors.

use crate::StatsError;

/// A distance metric over `f64` vectors.
///
/// The paper uses Euclidean distance between principal-component coordinates;
/// Manhattan and Chebyshev are provided for the clustering ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Metric {
    /// Straight-line (L2) distance — the paper's choice.
    #[default]
    Euclidean,
    /// City-block (L1) distance.
    Manhattan,
    /// Maximum coordinate difference (L∞).
    Chebyshev,
}

impl Metric {
    /// Computes the distance between two equal-length vectors.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if lengths differ and
    /// [`StatsError::Empty`] for empty vectors.
    pub fn distance(self, a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
        if a.len() != b.len() {
            return Err(StatsError::DimensionMismatch {
                op: "distance",
                left: (1, a.len()),
                right: (1, b.len()),
            });
        }
        if a.is_empty() {
            return Err(StatsError::Empty {
                what: "distance vectors",
            });
        }
        Ok(match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        })
    }
}

/// Squared Euclidean distance (no square root), used by Ward linkage and SSE.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_euclidean requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A symmetric pairwise distance table over `n` observations, stored as the
/// strict lower triangle.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceTable {
    n: usize,
    // Entry for (i, j) with i > j at index i*(i-1)/2 + j.
    tri: Vec<f64>,
}

impl DistanceTable {
    /// Builds the pairwise table for rows of `data` under `metric`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] when there are no observations.
    pub fn from_rows(data: &[Vec<f64>], metric: Metric) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::Empty {
                what: "distance table observations",
            });
        }
        let n = data.len();
        let mut tri = Vec::with_capacity(n * (n - 1) / 2);
        for i in 1..n {
            for j in 0..i {
                tri.push(metric.distance(&data[i], &data[j])?);
            }
        }
        Ok(DistanceTable { n, tri })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the table covers zero observations (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between observations `i` and `j` (0.0 when `i == j`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "distance index out of range");
        if i == j {
            return 0.0;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        self.tri[hi * (hi - 1) / 2 + lo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345() {
        let d = Metric::Euclidean
            .distance(&[0.0, 0.0], &[3.0, 4.0])
            .unwrap();
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.0, 6.0];
        assert!((Metric::Manhattan.distance(&a, &b).unwrap() - 6.0).abs() < 1e-12);
        assert!((Metric::Chebyshev.distance(&a, &b).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_vectors_error() {
        assert!(Metric::Euclidean.distance(&[], &[]).is_err());
    }

    #[test]
    fn squared_euclidean_matches_euclidean() {
        let a = [1.0, -2.0];
        let b = [4.0, 2.0];
        let d = Metric::Euclidean.distance(&a, &b).unwrap();
        assert!((squared_euclidean(&a, &b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn table_is_symmetric_with_zero_diagonal() {
        let rows = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let t = DistanceTable::from_rows(&rows, Metric::Euclidean).unwrap();
        assert_eq!(t.len(), 3);
        for i in 0..3 {
            assert_eq!(t.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(t.get(i, j), t.get(j, i));
            }
        }
        assert!((t.get(0, 1) - 1.0).abs() < 1e-12);
        assert!((t.get(0, 2) - 2.0).abs() < 1e-12);
        assert!((t.get(1, 2) - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_empty() {
        assert!(DistanceTable::from_rows(&[], Metric::Euclidean).is_err());
    }
}
