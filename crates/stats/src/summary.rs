//! Scalar summary statistics: mean, standard deviation, Pearson correlation.
//!
//! Every comparison table in the paper (Tables III–VII) reports a mean and a
//! standard deviation per suite, and Sections IV-C/IV-D report Pearson
//! correlations of footprint and miss rates against IPC.

use crate::StatsError;

/// Arithmetic mean of a non-empty slice.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty { what: "mean input" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (`n - 1` denominator).
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.len() < 2 {
        return Err(StatsError::InvalidArgument {
            what: "std_dev requires at least two samples",
        });
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok((ss / (xs.len() as f64 - 1.0)).sqrt())
}

/// Population standard deviation (`n` denominator).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice.
pub fn std_dev_population(xs: &[f64]) -> Result<f64, StatsError> {
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok((ss / xs.len() as f64).sqrt())
}

/// Pearson correlation coefficient between two paired samples.
///
/// Returns `0.0` when either sample has zero variance, mirroring the
/// convention used for constant workload characteristics.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] for unequal lengths and
/// [`StatsError::InvalidArgument`] for fewer than two pairs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::DimensionMismatch {
            op: "pearson",
            left: (1, xs.len()),
            right: (1, ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::InvalidArgument {
            what: "pearson requires at least two pairs",
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Minimum and maximum of a non-empty slice.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64), StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty {
            what: "min_max input",
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok((lo, hi))
}

/// Geometric mean of strictly positive samples.
///
/// SPEC's own overall metrics are geometric means, so the suite-aggregation
/// code offers it alongside the arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty slice and
/// [`StatsError::InvalidArgument`] if any sample is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty {
            what: "geometric_mean input",
        });
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::InvalidArgument {
            what: "geometric_mean requires positive samples",
        });
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Ok((log_sum / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn std_dev_known() {
        // Sample std of [2, 4, 4, 4, 5, 5, 7, 9] is ~2.138.
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.13809).abs() < 1e-4);
        assert!(std_dev(&[1.0]).is_err());
    }

    #[test]
    fn population_std_smaller_than_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(std_dev_population(&xs).unwrap() < std_dev(&xs).unwrap());
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[6.0, 4.0, 2.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }

    #[test]
    fn geometric_le_arithmetic() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        assert!(geometric_mean(&xs).unwrap() <= mean(&xs).unwrap());
    }
}
