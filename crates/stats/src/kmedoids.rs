//! K-medoids (PAM-style) clustering — an alternative subsetting baseline.
//!
//! The paper picks representatives by hierarchical clustering plus a
//! shortest-runtime rule. K-medoids offers a natural baseline comparison:
//! its medoids *are* representatives by construction (the member minimizing
//! the total distance to its cluster). The ablation benches compare subset
//! quality between the two approaches.

use crate::distance::{DistanceTable, Metric};
use crate::StatsError;

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoids {
    /// Indices of the chosen medoids (cluster centers), sorted.
    pub medoids: Vec<usize>,
    /// Cluster label (index into `medoids`) per observation.
    pub labels: Vec<usize>,
    /// Total distance of every observation to its medoid.
    pub cost: f64,
    /// Number of swap iterations performed.
    pub iterations: usize,
}

/// Maximum PAM swap passes before declaring convergence failure.
const MAX_ITERATIONS: usize = 200;

/// Runs PAM-style k-medoids with deterministic (greedy) initialization.
///
/// Initialization picks the observation with minimal total distance first,
/// then greedily adds the point that most reduces cost (the BUILD phase of
/// classic PAM); the swap phase then iterates to a local optimum. The whole
/// procedure is deterministic.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] unless `1 <= k <= n`, and
/// [`StatsError::Empty`] for no observations.
pub fn k_medoids(
    observations: &[Vec<f64>],
    k: usize,
    metric: Metric,
) -> Result<KMedoids, StatsError> {
    let n = observations.len();
    if n == 0 {
        return Err(StatsError::Empty {
            what: "k-medoids observations",
        });
    }
    if k == 0 || k > n {
        return Err(StatsError::InvalidArgument {
            what: "k must be within 1..=n",
        });
    }
    let d = DistanceTable::from_rows(observations, metric)?;

    // BUILD: first medoid minimizes total distance; the rest greedily
    // maximize cost reduction.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|j| d.get(a, j)).sum();
            let cb: f64 = (0..n).map(|j| d.get(b, j)).sum();
            ca.partial_cmp(&cb).expect("finite distances")
        })
        .expect("n > 0");
    medoids.push(first);
    while medoids.len() < k {
        let best = (0..n)
            .filter(|i| !medoids.contains(i))
            .min_by(|&a, &b| {
                let cost = |cand: usize| -> f64 {
                    (0..n)
                        .map(|j| {
                            medoids
                                .iter()
                                .map(|&m| d.get(m, j))
                                .chain(std::iter::once(d.get(cand, j)))
                                .fold(f64::INFINITY, f64::min)
                        })
                        .sum()
                };
                cost(a).partial_cmp(&cost(b)).expect("finite distances")
            })
            .expect("candidates remain");
        medoids.push(best);
    }

    // SWAP: hill-climb until no single medoid/non-medoid swap improves cost.
    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut labels = vec![0usize; n];
        let mut cost = 0.0;
        for (j, slot) in labels.iter_mut().enumerate() {
            let (label, dist) = medoids
                .iter()
                .enumerate()
                .map(|(li, &m)| (li, d.get(m, j)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("k >= 1");
            *slot = label;
            cost += dist;
        }
        (labels, cost)
    };

    let (_, mut cost) = assign(&medoids);
    let mut iterations = 0;
    loop {
        iterations += 1;
        if iterations > MAX_ITERATIONS {
            return Err(StatsError::NoConvergence {
                routine: "k-medoids swap phase",
                iterations: MAX_ITERATIONS,
            });
        }
        let mut improved = false;
        for mi in 0..k {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let old = medoids[mi];
                medoids[mi] = cand;
                let (_, new_cost) = assign(&medoids);
                if new_cost + 1e-12 < cost {
                    cost = new_cost;
                    improved = true;
                } else {
                    medoids[mi] = old;
                }
            }
        }
        if !improved {
            break;
        }
    }
    medoids.sort_unstable();
    let (labels, cost) = assign(&medoids);
    Ok(KMedoids {
        medoids,
        labels,
        cost,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![10.0, 10.0],
            vec![10.1, 9.9],
            vec![9.9, 10.2],
        ]
    }

    #[test]
    fn two_blobs_two_medoids() {
        let r = k_medoids(&blobs(), 2, Metric::Euclidean).unwrap();
        assert_eq!(r.medoids.len(), 2);
        // One medoid in each blob.
        assert!(r.medoids[0] < 3 && r.medoids[1] >= 3);
        // Labels agree within blobs.
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[3], r.labels[5]);
        assert_ne!(r.labels[0], r.labels[3]);
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let obs = blobs();
        let r = k_medoids(&obs, obs.len(), Metric::Euclidean).unwrap();
        assert!(r.cost.abs() < 1e-12);
    }

    #[test]
    fn k_one_picks_most_central() {
        let obs = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let r = k_medoids(&obs, 1, Metric::Euclidean).unwrap();
        // Point 1.0 or 2.0 minimizes total distance (1: 1+0+1+9=11, 2: 2+1+0+8=11).
        assert!(r.medoids[0] == 1 || r.medoids[0] == 2);
    }

    #[test]
    fn cost_decreases_with_k() {
        let obs = blobs();
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let r = k_medoids(&obs, k, Metric::Euclidean).unwrap();
            assert!(r.cost <= last + 1e-12, "cost rose at k={k}");
            last = r.cost;
        }
    }

    #[test]
    fn invalid_inputs() {
        assert!(k_medoids(&[], 1, Metric::Euclidean).is_err());
        assert!(k_medoids(&blobs(), 0, Metric::Euclidean).is_err());
        assert!(k_medoids(&blobs(), 7, Metric::Euclidean).is_err());
    }

    #[test]
    fn deterministic() {
        let a = k_medoids(&blobs(), 2, Metric::Euclidean).unwrap();
        let b = k_medoids(&blobs(), 2, Metric::Euclidean).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_point_at_nearest_medoid() {
        let obs = blobs();
        let r = k_medoids(&obs, 2, Metric::Euclidean).unwrap();
        for (j, &label) in r.labels.iter().enumerate() {
            let own = Metric::Euclidean
                .distance(&obs[j], &obs[r.medoids[label]])
                .unwrap();
            for &m in &r.medoids {
                let other = Metric::Euclidean.distance(&obs[j], &obs[m]).unwrap();
                assert!(own <= other + 1e-12);
            }
        }
    }
}
