//! Sum-of-squared-error (SSE) cluster quality.
//!
//! The paper measures clustering quality as the sum of squared Euclidean
//! distances between every point and the centroid of its cluster, and picks
//! the cluster count at the Pareto-optimal trade-off of SSE versus subset
//! execution time (Section V-C, Fig. 10).

use crate::distance::squared_euclidean;
use crate::StatsError;

/// The centroid (component-wise mean) of the given observation rows.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] when `points` is empty and
/// [`StatsError::DimensionMismatch`] for ragged rows.
pub fn centroid(points: &[&[f64]]) -> Result<Vec<f64>, StatsError> {
    let first = points.first().ok_or(StatsError::Empty {
        what: "centroid points",
    })?;
    let dim = first.len();
    let mut acc = vec![0.0; dim];
    for p in points {
        if p.len() != dim {
            return Err(StatsError::DimensionMismatch {
                op: "centroid",
                left: (1, dim),
                right: (1, p.len()),
            });
        }
        for (a, v) in acc.iter_mut().zip(*p) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= points.len() as f64;
    }
    Ok(acc)
}

/// SSE of one cluster: squared distances of members to their centroid.
///
/// # Errors
///
/// Propagates the errors of [`centroid`].
pub fn cluster_sse(points: &[&[f64]]) -> Result<f64, StatsError> {
    let c = centroid(points)?;
    Ok(points.iter().map(|p| squared_euclidean(p, &c)).sum())
}

/// Total SSE of a labelled clustering of `observations`.
///
/// `labels[i]` assigns observation `i` to a cluster; cluster ids need not be
/// contiguous.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] if `labels` and `observations`
/// have different lengths, or [`StatsError::Empty`] for no observations.
pub fn total_sse(observations: &[Vec<f64>], labels: &[usize]) -> Result<f64, StatsError> {
    if observations.is_empty() {
        return Err(StatsError::Empty {
            what: "sse observations",
        });
    }
    if observations.len() != labels.len() {
        return Err(StatsError::DimensionMismatch {
            op: "total_sse",
            left: (observations.len(), 1),
            right: (labels.len(), 1),
        });
    }
    let max_label = *labels.iter().max().expect("nonempty");
    let mut groups: Vec<Vec<&[f64]>> = vec![Vec::new(); max_label + 1];
    for (obs, &label) in observations.iter().zip(labels) {
        groups[label].push(obs.as_slice());
    }
    let mut sse = 0.0;
    for group in groups.iter().filter(|g| !g.is_empty()) {
        sse += cluster_sse(group)?;
    }
    Ok(sse)
}

/// SSE for every cut `k = 1..=n` of a dendrogram over `observations`,
/// returned as `sse[k - 1]`.
///
/// # Errors
///
/// Propagates errors from cutting and SSE computation.
pub fn sse_curve(
    observations: &[Vec<f64>],
    dendrogram: &crate::cluster::Dendrogram,
) -> Result<Vec<f64>, StatsError> {
    let n = dendrogram.n_leaves();
    let mut curve = Vec::with_capacity(n);
    for k in 1..=n {
        let labels = dendrogram.cut(k)?;
        curve.push(total_sse(observations, &labels)?);
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{agglomerative, Linkage};
    use crate::distance::Metric;

    #[test]
    fn centroid_of_symmetric_points_is_origin() {
        let pts: Vec<&[f64]> = vec![&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]];
        assert_eq!(centroid(&pts).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn centroid_rejects_empty_and_ragged() {
        assert!(centroid(&[]).is_err());
        let pts: Vec<&[f64]> = vec![&[1.0], &[1.0, 2.0]];
        assert!(centroid(&pts).is_err());
    }

    #[test]
    fn singleton_cluster_sse_zero() {
        let pts: Vec<&[f64]> = vec![&[3.0, 4.0]];
        assert_eq!(cluster_sse(&pts).unwrap(), 0.0);
    }

    #[test]
    fn known_sse() {
        // Points at -1 and 1: centroid 0, SSE = 1 + 1 = 2.
        let pts: Vec<&[f64]> = vec![&[-1.0], &[1.0]];
        assert!((cluster_sse(&pts).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_sse_all_singletons_is_zero() {
        let obs = vec![vec![1.0], vec![5.0], vec![9.0]];
        let sse = total_sse(&obs, &[0, 1, 2]).unwrap();
        assert_eq!(sse, 0.0);
    }

    #[test]
    fn total_sse_checks_lengths() {
        let obs = vec![vec![1.0]];
        assert!(total_sse(&obs, &[0, 1]).is_err());
        assert!(total_sse(&[], &[]).is_err());
    }

    #[test]
    fn sse_curve_monotone_decreasing_in_k() {
        let obs = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.2],
            vec![5.0, 5.0],
            vec![5.5, 5.2],
            vec![10.0, 0.0],
        ];
        let tree = agglomerative(&obs, Linkage::Ward, Metric::Euclidean).unwrap();
        let curve = sse_curve(&obs, &tree).unwrap();
        assert_eq!(curve.len(), 5);
        // More clusters cannot increase SSE for Ward-style hierarchies.
        assert!(curve.windows(2).all(|w| w[1] <= w[0] + 1e-9), "{curve:?}");
        assert!(curve[4].abs() < 1e-12);
    }
}
