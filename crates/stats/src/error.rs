use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// Matrix dimensions were incompatible for the requested operation.
    DimensionMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left/first operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right/second operand (rows, cols).
        right: (usize, usize),
    },
    /// The input was empty where at least one element is required.
    Empty {
        /// Description of what was empty.
        what: &'static str,
    },
    /// A numeric routine failed to converge.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside its valid range.
    InvalidArgument {
        /// Description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            StatsError::Empty { what } => write!(f, "empty input: {what}"),
            StatsError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
            StatsError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}
