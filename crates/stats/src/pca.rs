//! Principal Component Analysis with explained variance, scores, and factor
//! loadings.
//!
//! The paper standardizes 20 microarchitecture-independent characteristics of
//! 194 application–input pairs, extracts principal components, keeps the first
//! four (76.3% of total variance), and inspects factor loadings to explain
//! what dominates each component (Section V-A, Figs. 7–8).

use crate::eigen;
use crate::matrix::Matrix;
use crate::standardize::Standardizer;
use crate::StatsError;

/// A fitted PCA model.
///
/// Fit on raw (unstandardized) data with [`Pca::fit`] — standardization is
/// applied internally, matching the paper's methodology — or on
/// already-preprocessed data with [`Pca::fit_centered`].
///
/// # Example
///
/// ```
/// use stat_analysis::{matrix::Matrix, pca::Pca};
///
/// let data = Matrix::from_rows(&[
///     vec![1.0, 10.0], vec![2.0, 19.8], vec![3.0, 30.4], vec![4.0, 39.9],
/// ])?;
/// let pca = Pca::fit(&data)?;
/// // Two perfectly correlated variables collapse onto one component.
/// assert!(pca.explained_variance_ratio()[0] > 0.99);
/// let scores = pca.scores(&data, 1)?;
/// assert_eq!(scores.shape(), (4, 1));
/// # Ok::<(), stat_analysis::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    standardizer: Option<Standardizer>,
    /// Columns are component direction vectors (eigenvectors), descending.
    components: Matrix,
    eigenvalues: Vec<f64>,
    explained_ratio: Vec<f64>,
}

impl Pca {
    /// Fits PCA to raw data: standardize columns, then eigendecompose the
    /// covariance (= correlation) matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` has fewer than two rows or the
    /// decomposition fails.
    pub fn fit(data: &Matrix) -> Result<Self, StatsError> {
        let standardizer = Standardizer::fit(data)?;
        let z = standardizer.transform(data)?;
        let mut pca = Pca::fit_centered(&z)?;
        pca.standardizer = Some(standardizer);
        Ok(pca)
    }

    /// Fits PCA to data that is already centered/standardized.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` has fewer than two rows or the
    /// decomposition fails.
    pub fn fit_centered(data: &Matrix) -> Result<Self, StatsError> {
        let cov = data.covariance()?;
        let e = eigen::decompose_symmetric(&cov)?;
        // Numerical noise can push tiny eigenvalues slightly negative.
        let eigenvalues: Vec<f64> = e.values.iter().map(|&v| v.max(0.0)).collect();
        let total: f64 = eigenvalues.iter().sum();
        let explained_ratio = if total > 0.0 {
            eigenvalues.iter().map(|v| v / total).collect()
        } else {
            vec![0.0; eigenvalues.len()]
        };
        Ok(Pca {
            standardizer: None,
            components: e.vectors,
            eigenvalues,
            explained_ratio,
        })
    }

    /// Number of variables (and of components).
    pub fn n_variables(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Eigenvalues (component variances), descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each component, descending.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained_ratio
    }

    /// Cumulative explained-variance ratio.
    pub fn cumulative_explained_variance(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.explained_ratio
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// Smallest number of leading components whose cumulative explained
    /// variance reaches `fraction` (e.g. `0.75`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < fraction <= 1`.
    pub fn n_components_for(&self, fraction: f64) -> Result<usize, StatsError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(StatsError::InvalidArgument {
                what: "variance fraction must be in (0, 1]",
            });
        }
        let cum = self.cumulative_explained_variance();
        Ok(cum
            .iter()
            .position(|&c| c + 1e-12 >= fraction)
            .map(|p| p + 1)
            .unwrap_or(self.n_variables()))
    }

    /// Number of components selected by the Kaiser criterion: keep every
    /// component whose eigenvalue exceeds the average eigenvalue (for
    /// standardized data, eigenvalue > 1) — the common alternative to a
    /// variance-fraction cutoff, used by the component-selection ablation.
    pub fn n_components_kaiser(&self) -> usize {
        let mean = self.eigenvalues.iter().sum::<f64>() / self.eigenvalues.len() as f64;
        self.eigenvalues
            .iter()
            .filter(|&&v| v > mean)
            .count()
            .max(1)
    }

    /// Direction vector (unit eigenvector) of component `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.n_variables()`.
    pub fn component(&self, k: usize) -> Vec<f64> {
        self.components.col(k)
    }

    /// Projects observations onto the first `n_components` components,
    /// returning an `(observations × n_components)` score matrix.
    ///
    /// When the model was fitted with [`Pca::fit`], the same standardization
    /// is applied to `data` first.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `n_components` exceeds the
    /// number of variables, or a dimension error if `data` is incompatible.
    pub fn scores(&self, data: &Matrix, n_components: usize) -> Result<Matrix, StatsError> {
        if n_components == 0 || n_components > self.n_variables() {
            return Err(StatsError::InvalidArgument {
                what: "n_components out of range",
            });
        }
        let prepared = match &self.standardizer {
            Some(s) => s.transform(data)?,
            None => data.clone(),
        };
        if prepared.cols() != self.n_variables() {
            return Err(StatsError::DimensionMismatch {
                op: "pca scores",
                left: (1, self.n_variables()),
                right: prepared.shape(),
            });
        }
        let mut out = Matrix::zeros(prepared.rows(), n_components)?;
        for r in 0..prepared.rows() {
            for k in 0..n_components {
                let mut acc = 0.0;
                for c in 0..prepared.cols() {
                    acc += prepared[(r, c)] * self.components[(c, k)];
                }
                out[(r, k)] = acc;
            }
        }
        Ok(out)
    }

    /// Factor loadings: correlation of each original variable with each of
    /// the first `n_components` components, i.e. `eigenvector * sqrt(λ)`.
    ///
    /// Row `v`, column `k` gives the loading of variable `v` on component
    /// `k` — exactly what the paper plots in Fig. 8.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `n_components` exceeds the
    /// number of variables.
    pub fn loadings(&self, n_components: usize) -> Result<Matrix, StatsError> {
        if n_components == 0 || n_components > self.n_variables() {
            return Err(StatsError::InvalidArgument {
                what: "n_components out of range",
            });
        }
        let p = self.n_variables();
        let mut out = Matrix::zeros(p, n_components)?;
        for v in 0..p {
            for k in 0..n_components {
                out[(v, k)] = self.components[(v, k)] * self.eigenvalues[k].sqrt();
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_data() -> Matrix {
        // x, 2x + noise, -x + noise: effectively rank ~1 dominant direction.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x = i as f64 / 4.0;
                let n1 = ((i * 7919) % 13) as f64 / 130.0;
                let n2 = ((i * 104729) % 17) as f64 / 170.0;
                vec![x, 2.0 * x + n1, -x + n2]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn variance_ratios_sum_to_one() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_direction_found() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        assert!(pca.explained_variance_ratio()[0] > 0.9);
    }

    #[test]
    fn eigenvalues_descending_nonnegative() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        assert!(pca.eigenvalues().windows(2).all(|w| w[0] >= w[1]));
        assert!(pca.eigenvalues().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn total_variance_preserved_on_standardized_data() {
        // Standardized p-variable data has total variance p.
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let total: f64 = pca.eigenvalues().iter().sum();
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scores_are_uncorrelated() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let scores = pca.scores(&data, 3).unwrap();
        let cov = scores.covariance().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(
                        cov[(i, j)].abs() < 1e-9,
                        "components {i},{j} correlated: {}",
                        cov[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn score_variances_match_eigenvalues() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let scores = pca.scores(&data, 3).unwrap();
        let cov = scores.covariance().unwrap();
        for k in 0..3 {
            assert!((cov[(k, k)] - pca.eigenvalues()[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn n_components_for_fraction() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        assert_eq!(pca.n_components_for(1.0).unwrap(), 3);
        assert_eq!(pca.n_components_for(0.5).unwrap(), 1);
        assert!(pca.n_components_for(0.0).is_err());
        assert!(pca.n_components_for(1.5).is_err());
    }

    #[test]
    fn loadings_bounded_by_one_for_standardized_fit() {
        // Loadings are correlations when fitting standardized data.
        let pca = Pca::fit(&correlated_data()).unwrap();
        let l = pca.loadings(3).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!(l[(r, c)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn loadings_squared_row_sums_are_communalities() {
        // With all components kept, each variable's squared loadings sum to
        // its variance (1.0 after standardization).
        let pca = Pca::fit(&correlated_data()).unwrap();
        let l = pca.loadings(3).unwrap();
        for r in 0..3 {
            let s: f64 = (0..3).map(|c| l[(r, c)] * l[(r, c)]).sum();
            assert!((s - 1.0).abs() < 1e-9, "communality {s}");
        }
    }

    #[test]
    fn scores_rejects_bad_component_count() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.scores(&data, 0).is_err());
        assert!(pca.scores(&data, 4).is_err());
    }

    #[test]
    fn kaiser_rule_keeps_dominant_components() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        let k = pca.n_components_kaiser();
        assert!((1..=3).contains(&k));
        // The dominant direction exceeds the mean eigenvalue by construction.
        assert!(pca.eigenvalues()[0] > 1.0);
        assert!(k <= pca.n_components_for(0.99).unwrap());
    }

    #[test]
    fn cumulative_is_monotone() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        let cum = pca.cumulative_explained_variance();
        assert!(cum.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-9);
    }
}
