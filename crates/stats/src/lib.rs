//! From-scratch statistical analysis kernels used by the SPEC CPU2017
//! workload-characterization reproduction.
//!
//! The paper reduces a `[194 × 20]` matrix of microarchitecture-independent
//! workload characteristics with Principal Component Analysis, clusters the
//! resulting principal-component scores with agglomerative hierarchical
//! clustering, and picks the number of clusters at the Pareto knee of the
//! (sum-of-squared-error, execution-time) trade-off. This crate provides each
//! of those pieces as an independent, well-tested building block:
//!
//! - [`matrix::Matrix`] — a small dense row-major matrix with the handful of
//!   operations the pipeline needs (products, transpose, column statistics).
//! - [`eigen`] — cyclic Jacobi eigendecomposition for symmetric matrices.
//! - [`pca::Pca`] — PCA with explained variance, scores, and factor loadings.
//! - [`cluster`] — hierarchical clustering with four linkage criteria and an
//!   inspectable [`cluster::Dendrogram`].
//! - [`sse`] — sum-of-squared-error cluster quality.
//! - [`pareto`] — Pareto front extraction and knee-point selection.
//! - [`kmedoids`], [`silhouette`] — a PAM-style baseline subsetter and a
//!   second cluster-quality view, used by the ablation benches.
//! - [`standardize`], [`distance`], [`summary`] — supporting numerics.
//!
//! # Example
//!
//! ```
//! use stat_analysis::matrix::Matrix;
//! use stat_analysis::pca::Pca;
//!
//! // Four observations of three correlated variables.
//! let data = Matrix::from_rows(&[
//!     vec![1.0, 2.0, 0.5],
//!     vec![2.0, 4.1, 1.0],
//!     vec![3.0, 5.9, 1.4],
//!     vec![4.0, 8.1, 2.1],
//! ])?;
//! let pca = Pca::fit(&data)?;
//! // One direction dominates because the variables move together.
//! assert!(pca.explained_variance_ratio()[0] > 0.95);
//! # Ok::<(), stat_analysis::StatsError>(())
//! ```

pub mod cluster;
pub mod distance;
pub mod eigen;
pub mod kmedoids;
pub mod matrix;
pub mod pareto;
pub mod pca;
pub mod rotation;
pub mod silhouette;
pub mod sse;
pub mod standardize;
pub mod summary;

mod error;

pub use error::StatsError;
