//! Silhouette coefficient — cluster-quality metric complementary to SSE.
//!
//! The ablation benches report silhouettes alongside the paper's SSE-based
//! Pareto choice to show how the two quality views agree or disagree across
//! linkage criteria and cluster counts.

use crate::distance::{DistanceTable, Metric};
use crate::StatsError;

/// Mean silhouette coefficient over all observations, in `[-1, 1]`.
///
/// Observations in singleton clusters contribute `0.0` (the standard
/// convention). Returns an error when there are fewer than two clusters.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] for mismatched lengths,
/// [`StatsError::Empty`] for no observations, and
/// [`StatsError::InvalidArgument`] when all observations share one cluster.
pub fn mean_silhouette(
    observations: &[Vec<f64>],
    labels: &[usize],
    metric: Metric,
) -> Result<f64, StatsError> {
    if observations.len() != labels.len() {
        return Err(StatsError::DimensionMismatch {
            op: "silhouette",
            left: (observations.len(), 1),
            right: (labels.len(), 1),
        });
    }
    if observations.is_empty() {
        return Err(StatsError::Empty {
            what: "silhouette observations",
        });
    }
    let k = labels.iter().max().expect("nonempty") + 1;
    let distinct: std::collections::HashSet<_> = labels.iter().collect();
    if distinct.len() < 2 {
        return Err(StatsError::InvalidArgument {
            what: "silhouette needs at least two clusters",
        });
    }
    let d = DistanceTable::from_rows(observations, metric)?;
    let n = observations.len();

    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }

    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        if sizes[own] <= 1 {
            continue; // singleton contributes 0
        }
        // a(i): mean intra-cluster distance (excluding self).
        // b(i): minimal mean distance to another cluster.
        let mut intra = 0.0;
        let mut inter = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            if labels[j] == own {
                intra += d.get(i, j);
            } else {
                inter[labels[j]] += d.get(i, j);
            }
        }
        let a = intra / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| inter[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a.max(b) > 0.0 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
    }
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        (
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.1],
                vec![10.0, 10.0],
                vec![10.1, 10.1],
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn well_separated_blobs_near_one() {
        let (obs, labels) = blobs();
        let s = mean_silhouette(&obs, &labels, Metric::Euclidean).unwrap();
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn scrambled_labels_poor_score() {
        let (obs, _) = blobs();
        let bad = vec![0, 1, 0, 1];
        let s = mean_silhouette(&obs, &bad, Metric::Euclidean).unwrap();
        assert!(s < 0.0, "bad clustering should score negative, got {s}");
    }

    #[test]
    fn bounded() {
        let (obs, labels) = blobs();
        let s = mean_silhouette(&obs, &labels, Metric::Euclidean).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn single_cluster_rejected() {
        let (obs, _) = blobs();
        assert!(mean_silhouette(&obs, &[0, 0, 0, 0], Metric::Euclidean).is_err());
    }

    #[test]
    fn singletons_contribute_zero() {
        let obs = vec![vec![0.0], vec![5.0], vec![5.1]];
        let labels = vec![0, 1, 1];
        // Observation 0 is a singleton -> contributes 0; the pair scores high.
        let s = mean_silhouette(&obs, &labels, Metric::Euclidean).unwrap();
        assert!(s > 0.5);
    }

    #[test]
    fn length_mismatch_rejected() {
        let (obs, _) = blobs();
        assert!(mean_silhouette(&obs, &[0, 1], Metric::Euclidean).is_err());
        assert!(mean_silhouette(&[], &[], Metric::Euclidean).is_err());
    }
}
