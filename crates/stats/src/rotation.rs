//! Varimax factor rotation.
//!
//! The paper interprets principal components through their factor loadings
//! ("PC2 is positively dominated by percent store micro-operations, …").
//! Varimax rotation is the classic tool for sharpening exactly that reading:
//! it orthogonally rotates the loading matrix so each factor has a few large
//! loadings and many near-zero ones, making the "dominated by" attribution
//! less ambiguous. Offered as an extension view next to the paper's raw
//! loadings (Fig. 8).

use crate::matrix::Matrix;
use crate::StatsError;

/// Result of a varimax rotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Varimax {
    /// The rotated `[variables × factors]` loading matrix.
    pub loadings: Matrix,
    /// The orthogonal `[factors × factors]` rotation applied.
    pub rotation: Matrix,
    /// Sweeps performed until convergence.
    pub iterations: usize,
}

/// Kaiser's varimax criterion value of a loading matrix (higher = simpler
/// structure).
pub fn varimax_criterion(loadings: &Matrix) -> f64 {
    let p = loadings.rows() as f64;
    let mut total = 0.0;
    for j in 0..loadings.cols() {
        let col: Vec<f64> = (0..loadings.rows()).map(|i| loadings[(i, j)]).collect();
        let sum_sq: f64 = col.iter().map(|v| v * v).sum();
        let sum_q: f64 = col.iter().map(|v| v.powi(4)).sum();
        total += sum_q / p - (sum_sq / p).powi(2);
    }
    total
}

/// Maximum rotation sweeps.
const MAX_SWEEPS: usize = 100;

/// Rotates a loading matrix with the pairwise Kaiser varimax algorithm.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if the matrix has fewer than two
/// factor columns or contains non-finite values, and
/// [`StatsError::NoConvergence`] if rotations do not settle.
pub fn varimax(loadings: &Matrix) -> Result<Varimax, StatsError> {
    let (p, k) = loadings.shape();
    if k < 2 {
        return Err(StatsError::InvalidArgument {
            what: "varimax needs at least two factors",
        });
    }
    if loadings.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidArgument {
            what: "loadings must be finite",
        });
    }
    let mut l = loadings.clone();
    let mut rot = Matrix::identity(k)?;

    for sweep in 1..=MAX_SWEEPS {
        let mut max_angle: f64 = 0.0;
        for a in 0..k - 1 {
            for b in a + 1..k {
                // Kaiser's closed-form optimal angle for the (a, b) plane.
                let (mut aa, mut bb, mut cc, mut dd) = (0.0, 0.0, 0.0, 0.0);
                for i in 0..p {
                    let u = l[(i, a)] * l[(i, a)] - l[(i, b)] * l[(i, b)];
                    let v = 2.0 * l[(i, a)] * l[(i, b)];
                    aa += u;
                    bb += v;
                    cc += u * u - v * v;
                    dd += 2.0 * u * v;
                }
                let num = dd - 2.0 * aa * bb / p as f64;
                let den = cc - (aa * aa - bb * bb) / p as f64;
                let phi = 0.25 * num.atan2(den);
                if phi.abs() < 1e-9 {
                    continue;
                }
                max_angle = max_angle.max(phi.abs());
                let (s, c) = phi.sin_cos();
                for i in 0..p {
                    let la = l[(i, a)];
                    let lb = l[(i, b)];
                    l[(i, a)] = c * la + s * lb;
                    l[(i, b)] = -s * la + c * lb;
                }
                for i in 0..k {
                    let ra = rot[(i, a)];
                    let rb = rot[(i, b)];
                    rot[(i, a)] = c * ra + s * rb;
                    rot[(i, b)] = -s * ra + c * rb;
                }
            }
        }
        if max_angle < 1e-7 {
            return Ok(Varimax {
                loadings: l,
                rotation: rot,
                iterations: sweep,
            });
        }
    }
    Err(StatsError::NoConvergence {
        routine: "varimax",
        iterations: MAX_SWEEPS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately "muddy" loading matrix: two clean factors mixed by a
    /// 45-degree rotation.
    fn mixed_loadings() -> Matrix {
        let clean = Matrix::from_rows(&[
            vec![0.9, 0.0],
            vec![0.8, 0.1],
            vec![0.85, 0.05],
            vec![0.0, 0.9],
            vec![0.1, 0.8],
            vec![0.05, 0.85],
        ])
        .unwrap();
        let s = 1.0 / 2.0f64.sqrt();
        let r = Matrix::from_rows(&[vec![s, -s], vec![s, s]]).unwrap();
        clean.matmul(&r).unwrap()
    }

    #[test]
    fn rotation_improves_criterion() {
        let mixed = mixed_loadings();
        let before = varimax_criterion(&mixed);
        let result = varimax(&mixed).unwrap();
        let after = varimax_criterion(&result.loadings);
        assert!(after > before + 1e-3, "criterion {before} -> {after}");
    }

    #[test]
    fn rotation_matrix_is_orthogonal() {
        let result = varimax(&mixed_loadings()).unwrap();
        let gram = result
            .rotation
            .transpose()
            .matmul(&result.rotation)
            .unwrap();
        let id = Matrix::identity(2).unwrap();
        assert!(gram.max_abs_diff(&id).unwrap() < 1e-9);
    }

    #[test]
    fn rotated_equals_original_times_rotation() {
        let mixed = mixed_loadings();
        let result = varimax(&mixed).unwrap();
        let reconstructed = mixed.matmul(&result.rotation).unwrap();
        assert!(reconstructed.max_abs_diff(&result.loadings).unwrap() < 1e-9);
    }

    #[test]
    fn communalities_preserved() {
        // Row sums of squared loadings are rotation-invariant.
        let mixed = mixed_loadings();
        let result = varimax(&mixed).unwrap();
        for i in 0..mixed.rows() {
            let h0: f64 = (0..2).map(|j| mixed[(i, j)].powi(2)).sum();
            let h1: f64 = (0..2).map(|j| result.loadings[(i, j)].powi(2)).sum();
            assert!((h0 - h1).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_simple_structure() {
        // After rotation, each variable should load mostly on one factor.
        let result = varimax(&mixed_loadings()).unwrap();
        for i in 0..6 {
            let a = result.loadings[(i, 0)].abs();
            let b = result.loadings[(i, 1)].abs();
            let (big, small) = if a > b { (a, b) } else { (b, a) };
            assert!(big > 3.0 * small, "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn single_factor_rejected() {
        let m = Matrix::from_rows(&[vec![1.0], vec![0.5]]).unwrap();
        assert!(varimax(&m).is_err());
    }

    #[test]
    fn already_simple_structure_is_stable() {
        let clean = Matrix::from_rows(&[
            vec![0.9, 0.0],
            vec![0.8, 0.0],
            vec![0.0, 0.9],
            vec![0.0, 0.8],
        ])
        .unwrap();
        let result = varimax(&clean).unwrap();
        assert!(clean.max_abs_diff(&result.loadings).unwrap() < 1e-6);
    }
}
