//! Agglomerative hierarchical clustering with an inspectable dendrogram.
//!
//! The paper (Section V-B) starts with every application–input pair in its own
//! cluster and repeatedly merges the two clusters with the least linkage
//! distance over Euclidean distances between principal-component coordinates,
//! visualizing the merge order as a dendrogram (Fig. 9) and cutting it at a
//! Pareto-optimal cluster count (Fig. 10).
//!
//! The implementation uses the Lance–Williams recurrence so all four standard
//! linkage criteria share one update rule.

use crate::distance::{DistanceTable, Metric};
use crate::StatsError;

/// Linkage criterion: how the distance between two clusters is derived from
/// member distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Linkage {
    /// Minimum pairwise distance (nearest neighbour).
    Single,
    /// Maximum pairwise distance (furthest neighbour).
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — a common default for
    /// benchmark-subsetting studies.
    #[default]
    Average,
    /// Ward's minimum-variance criterion (on squared Euclidean distances).
    Ward,
}

/// One merge step: clusters `a` and `b` became cluster `id` at `height`.
///
/// Leaf observations are clusters `0..n`; the merge at step `s` creates
/// cluster `n + s`, mirroring SciPy's linkage-matrix convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Id of the newly formed cluster.
    pub id: usize,
    /// Number of leaves under the new cluster.
    pub size: usize,
}

/// The full merge history of an agglomerative clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of original observations.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merges in the order they were performed (ascending height for
    /// monotone linkages).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into exactly `k` clusters, returning a label in
    /// `0..k` for every leaf. Labels are assigned in order of each cluster's
    /// smallest leaf index, so the labelling is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `1 <= k <= n_leaves`.
    pub fn cut(&self, k: usize) -> Result<Vec<usize>, StatsError> {
        if k == 0 || k > self.n_leaves {
            return Err(StatsError::InvalidArgument {
                what: "cluster count k out of range",
            });
        }
        // Apply the first n_leaves - k merges with a union-find.
        let total = self.n_leaves + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for merge in self.merges.iter().take(self.n_leaves - k) {
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = merge.id;
            parent[rb] = merge.id;
        }
        // Map roots to compact labels ordered by smallest member leaf.
        let mut roots: Vec<usize> = Vec::new();
        let mut leaf_roots = Vec::with_capacity(self.n_leaves);
        for leaf in 0..self.n_leaves {
            let r = find(&mut parent, leaf);
            if !roots.contains(&r) {
                roots.push(r);
            }
            leaf_roots.push(r);
        }
        let labels = leaf_roots
            .iter()
            .map(|r| roots.iter().position(|x| x == r).expect("root recorded"))
            .collect();
        Ok(labels)
    }

    /// Groups leaf indices by cluster for a cut at `k` clusters.
    ///
    /// # Errors
    ///
    /// Same as [`Dendrogram::cut`].
    pub fn clusters(&self, k: usize) -> Result<Vec<Vec<usize>>, StatsError> {
        let labels = self.cut(k)?;
        let mut groups = vec![Vec::new(); k];
        for (leaf, &label) in labels.iter().enumerate() {
            groups[label].push(leaf);
        }
        Ok(groups)
    }

    /// Renders a left-to-right ASCII dendrogram, labelling leaves with
    /// `labels` (Fig. 9 analogue).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `labels.len()` differs
    /// from the number of leaves.
    pub fn render_ascii(&self, labels: &[&str], width: usize) -> Result<String, StatsError> {
        if labels.len() != self.n_leaves {
            return Err(StatsError::DimensionMismatch {
                op: "dendrogram labels",
                left: (self.n_leaves, 1),
                right: (labels.len(), 1),
            });
        }
        let max_h = self
            .merges
            .iter()
            .map(|m| m.height)
            .fold(0.0, f64::max)
            .max(1e-12);
        // Order leaves by recursive tree traversal so related leaves adjoin.
        let order = self.leaf_order();
        let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
        let chart_w = width.saturating_sub(label_w + 3).max(10);

        let mut out = String::new();
        out.push_str(&format!(
            "{:label_w$} | 0 {:->chart_w$}\n",
            "leaf",
            format!(" max linkage = {max_h:.3}"),
        ));
        for &leaf in &order {
            let h = self.leaf_join_height(leaf).unwrap_or(max_h);
            let bar = ((h / max_h) * chart_w as f64).round() as usize;
            let bar = bar.clamp(1, chart_w);
            out.push_str(&format!(
                "{:label_w$} | {}\n",
                labels[leaf],
                "=".repeat(bar)
            ));
        }
        Ok(out)
    }

    /// The height at which `leaf` is merged for the first time, or `None`
    /// for a single-leaf tree with no merges.
    pub fn leaf_join_height(&self, leaf: usize) -> Option<f64> {
        self.merges
            .iter()
            .find(|m| m.a == leaf || m.b == leaf)
            .map(|m| m.height)
    }

    /// Leaves ordered by a depth-first walk of the final tree, which places
    /// similar observations next to each other (standard dendrogram order).
    pub fn leaf_order(&self) -> Vec<usize> {
        if self.merges.is_empty() {
            return (0..self.n_leaves).collect();
        }
        let root = self.merges.last().expect("nonempty").id;
        let mut order = Vec::with_capacity(self.n_leaves);
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if node < self.n_leaves {
                order.push(node);
            } else {
                let m = &self.merges[node - self.n_leaves];
                stack.push(m.b);
                stack.push(m.a);
            }
        }
        order
    }
}

/// Runs agglomerative clustering over `observations` (rows of equal length).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for zero observations or
/// [`StatsError::DimensionMismatch`] for ragged rows.
///
/// # Example
///
/// ```
/// use stat_analysis::cluster::{agglomerative, Linkage};
/// use stat_analysis::distance::Metric;
///
/// let pts = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0],   // tight pair
///     vec![5.0, 5.0], vec![5.1, 5.0],   // tight pair, far away
/// ];
/// let tree = agglomerative(&pts, Linkage::Average, Metric::Euclidean)?;
/// let labels = tree.cut(2)?;
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[2], labels[3]);
/// assert_ne!(labels[0], labels[2]);
/// # Ok::<(), stat_analysis::StatsError>(())
/// ```
pub fn agglomerative(
    observations: &[Vec<f64>],
    linkage: Linkage,
    metric: Metric,
) -> Result<Dendrogram, StatsError> {
    let n = observations.len();
    if n == 0 {
        return Err(StatsError::Empty {
            what: "clustering observations",
        });
    }
    if n == 1 {
        return Ok(Dendrogram {
            n_leaves: 1,
            merges: Vec::new(),
        });
    }
    let table = DistanceTable::from_rows(observations, metric)?;

    // Active cluster list: (cluster id, size). Distances kept in a dense
    // symmetric map keyed by active-slot index.
    let mut ids: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut dist: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let base = table.get(i, j);
            // Ward works on squared distances internally.
            *cell = if linkage == Linkage::Ward {
                base * base
            } else {
                base
            };
        }
    }

    let mut merges = Vec::with_capacity(n - 1);
    let mut active: Vec<usize> = (0..n).collect(); // slots into ids/sizes/dist

    for step in 0..n - 1 {
        // Find closest active pair.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for (ai, &i) in active.iter().enumerate() {
            for &j in active.iter().skip(ai + 1) {
                let d = dist[i][j];
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, dij) = best;
        let new_id = n + step;
        let (si, sj) = (sizes[i] as f64, sizes[j] as f64);
        let height = if linkage == Linkage::Ward {
            dij.max(0.0).sqrt()
        } else {
            dij
        };
        merges.push(Merge {
            a: ids[i],
            b: ids[j],
            height,
            id: new_id,
            size: sizes[i] + sizes[j],
        });

        // Lance–Williams update of distances from the merged cluster to every
        // other active cluster; the merged cluster reuses slot i.
        for &k in &active {
            if k == i || k == j {
                continue;
            }
            let sk = sizes[k] as f64;
            let dik = dist[i][k];
            let djk = dist[j][k];
            let updated = match linkage {
                Linkage::Single => dik.min(djk),
                Linkage::Complete => dik.max(djk),
                Linkage::Average => (si * dik + sj * djk) / (si + sj),
                Linkage::Ward => ((si + sk) * dik + (sj + sk) * djk - sk * dij) / (si + sj + sk),
            };
            dist[i][k] = updated;
            dist[k][i] = updated;
        }
        ids[i] = new_id;
        sizes[i] += sizes[j];
        active.retain(|&s| s != j);
    }
    Ok(Dendrogram {
        n_leaves: n,
        merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.3],
            vec![10.0, 10.0],
            vec![10.2, 9.9],
            vec![9.9, 10.1],
        ]
    }

    #[test]
    fn all_linkages_separate_two_blobs() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let tree = agglomerative(&two_blobs(), linkage, Metric::Euclidean).unwrap();
            let labels = tree.cut(2).unwrap();
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[4], labels[5]);
            assert_ne!(labels[0], labels[3], "linkage {linkage:?}");
        }
    }

    #[test]
    fn merge_count_and_ids() {
        let tree = agglomerative(&two_blobs(), Linkage::Average, Metric::Euclidean).unwrap();
        assert_eq!(tree.merges().len(), 5);
        assert_eq!(tree.merges().last().unwrap().size, 6);
        for (s, m) in tree.merges().iter().enumerate() {
            assert_eq!(m.id, 6 + s);
        }
    }

    #[test]
    fn heights_monotone_for_monotone_linkages() {
        // Single/complete/average/ward are all monotone on these data.
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let tree = agglomerative(&two_blobs(), linkage, Metric::Euclidean).unwrap();
            let hs: Vec<f64> = tree.merges().iter().map(|m| m.height).collect();
            assert!(
                hs.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "{linkage:?} heights {hs:?}"
            );
        }
    }

    #[test]
    fn cut_extremes() {
        let data = two_blobs();
        let tree = agglomerative(&data, Linkage::Average, Metric::Euclidean).unwrap();
        let all_separate = tree.cut(6).unwrap();
        let distinct: std::collections::HashSet<_> = all_separate.iter().collect();
        assert_eq!(distinct.len(), 6);
        let all_together = tree.cut(1).unwrap();
        assert!(all_together.iter().all(|&l| l == 0));
        assert!(tree.cut(0).is_err());
        assert!(tree.cut(7).is_err());
    }

    #[test]
    fn clusters_partition_leaves() {
        let tree = agglomerative(&two_blobs(), Linkage::Ward, Metric::Euclidean).unwrap();
        for k in 1..=6 {
            let groups = tree.clusters(k).unwrap();
            assert_eq!(groups.len(), k);
            let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_observation() {
        let tree = agglomerative(&[vec![1.0]], Linkage::Average, Metric::Euclidean).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.cut(1).unwrap(), vec![0]);
    }

    #[test]
    fn empty_observations_error() {
        assert!(agglomerative(&[], Linkage::Average, Metric::Euclidean).is_err());
    }

    #[test]
    fn first_merge_is_closest_pair() {
        let data = vec![vec![0.0], vec![10.0], vec![0.4], vec![20.0]];
        let tree = agglomerative(&data, Linkage::Single, Metric::Euclidean).unwrap();
        let first = tree.merges()[0];
        let mut pair = [first.a, first.b];
        pair.sort_unstable();
        assert_eq!(pair, [0, 2]);
        assert!((first.height - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ward_prefers_balanced_low_variance_merges() {
        // A tight pair plus one distant point: ward merges the pair first.
        let data = vec![vec![0.0, 0.0], vec![0.5, 0.0], vec![8.0, 0.0]];
        let tree = agglomerative(&data, Linkage::Ward, Metric::Euclidean).unwrap();
        let first = tree.merges()[0];
        let mut pair = [first.a, first.b];
        pair.sort_unstable();
        assert_eq!(pair, [0, 1]);
    }

    #[test]
    fn leaf_order_is_permutation() {
        let tree = agglomerative(&two_blobs(), Linkage::Average, Metric::Euclidean).unwrap();
        let mut order = tree.leaf_order();
        order.sort_unstable();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn ascii_render_contains_labels() {
        let tree = agglomerative(&two_blobs(), Linkage::Average, Metric::Euclidean).unwrap();
        let labels = ["a0", "a1", "a2", "b0", "b1", "b2"];
        let s = tree.render_ascii(&labels, 60).unwrap();
        for l in labels {
            assert!(s.contains(l), "missing {l} in:\n{s}");
        }
    }

    #[test]
    fn ascii_render_checks_label_count() {
        let tree = agglomerative(&two_blobs(), Linkage::Average, Metric::Euclidean).unwrap();
        assert!(tree.render_ascii(&["only-one"], 60).is_err());
    }
}
