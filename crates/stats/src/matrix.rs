//! A small dense row-major matrix.
//!
//! This is deliberately minimal: the characterization pipeline works with
//! matrices no larger than a few hundred rows by a few dozen columns, so a
//! simple contiguous `Vec<f64>` representation with straightforward loops is
//! both fast enough and easy to audit.

use crate::StatsError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use stat_analysis::matrix::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m[(0, 1)], 2.0);
/// assert_eq!(m.transpose()[(1, 0)], 2.0);
/// # Ok::<(), stat_analysis::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an all-zero matrix with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, StatsError> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::Empty {
                what: "matrix dimensions",
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates an identity matrix of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if `n` is zero.
    pub fn identity(n: usize) -> Result<Self, StatsError> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if there are no rows or the rows are
    /// empty, and [`StatsError::DimensionMismatch`] if rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, StatsError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(StatsError::Empty {
                what: "matrix rows",
            });
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(StatsError::Empty {
                what: "matrix columns",
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(StatsError::DimensionMismatch {
                    op: "from_rows",
                    left: (1, ncols),
                    right: (i, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`StatsError::Empty`] for zero dimensions.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, StatsError> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::Empty {
                what: "matrix dimensions",
            });
        }
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// A view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] unless
    /// `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != rhs.rows {
            return Err(StatsError::DimensionMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Per-column arithmetic means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Per-column sample standard deviations (`n - 1` denominator).
    ///
    /// Columns with a single row yield `0.0`.
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        if self.rows < 2 {
            return vec![0.0; self.cols];
        }
        let mut acc = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((a, v), m) in acc.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *a += d * d;
            }
        }
        acc.iter()
            .map(|a| (a / (self.rows as f64 - 1.0)).sqrt())
            .collect()
    }

    /// Returns a copy with every column mean-centered.
    pub fn center_columns(&self) -> Matrix {
        let means = self.column_means();
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(r, c)] -= means[c];
            }
        }
        out
    }

    /// Sample covariance matrix of the columns (`n - 1` denominator).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if there are fewer than two
    /// rows.
    pub fn covariance(&self) -> Result<Matrix, StatsError> {
        if self.rows < 2 {
            return Err(StatsError::InvalidArgument {
                what: "covariance requires at least two observations",
            });
        }
        let centered = self.center_columns();
        let mut cov = centered.transpose().matmul(&centered)?;
        let denom = (self.rows - 1) as f64;
        for v in &mut cov.data {
            *v /= denom;
        }
        Ok(cov)
    }

    /// Pearson correlation matrix of the columns.
    ///
    /// Columns with zero variance correlate `0.0` with everything and `1.0`
    /// with themselves, matching the convention used for constant workload
    /// characteristics.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if there are fewer than two
    /// rows.
    pub fn correlation(&self) -> Result<Matrix, StatsError> {
        let cov = self.covariance()?;
        let mut out = Matrix::zeros(self.cols, self.cols)?;
        for i in 0..self.cols {
            for j in 0..self.cols {
                let denom = (cov[(i, i)] * cov[(j, j)]).sqrt();
                out[(i, j)] = if i == j {
                    1.0
                } else if denom > 0.0 {
                    cov[(i, j)] / denom
                } else {
                    0.0
                };
            }
        }
        Ok(out)
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for differing shapes.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, StatsError> {
        if self.shape() != other.shape() {
            return Err(StatsError::DimensionMismatch {
                op: "max_abs_diff",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// True when the matrix equals its transpose to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.iter_rows() {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v:>12.6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x2() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_rejects_empty() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, StatsError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_and_rows() {
        let m = m2x2();
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = m2x2();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = m2x2();
        let id = Matrix::identity(2).unwrap();
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = m2x2();
        let b = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            a.matmul(&b),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
        let stds = m.column_stds();
        assert!((stds[0] - (2.0_f64).sqrt()).abs() < 1e-12);
        assert!((stds[1] - (200.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn centering_zeroes_means() {
        let m = Matrix::from_rows(&[vec![1.0, -5.0], vec![2.0, 7.0], vec![6.0, 1.0]]).unwrap();
        let c = m.center_columns();
        for mean in c.column_means() {
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_known_values() {
        // Two perfectly correlated columns.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = m.covariance().unwrap();
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn correlation_of_correlated_columns_is_one() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let corr = m.correlation().unwrap();
        assert!((corr[(0, 1)] - 1.0).abs() < 1e-12);
        assert_eq!(corr[(0, 0)], 1.0);
    }

    #[test]
    fn correlation_constant_column_is_zero() {
        let m = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]).unwrap();
        let corr = m.correlation().unwrap();
        assert_eq!(corr[(0, 1)], 0.0);
        assert_eq!(corr[(1, 1)], 1.0);
    }

    #[test]
    fn covariance_needs_two_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(m.covariance().is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = m2x2();
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", m2x2()).is_empty());
    }
}
