//! Property-based tests of the statistical kernels' mathematical invariants.

use proptest::prelude::*;
use stat_analysis::cluster::{agglomerative, Linkage};
use stat_analysis::distance::{squared_euclidean, DistanceTable, Metric};
use stat_analysis::eigen;
use stat_analysis::matrix::Matrix;
use stat_analysis::pareto::{knee_point, pareto_front, Candidate};
use stat_analysis::pca::Pca;
use stat_analysis::sse::total_sse;
use stat_analysis::standardize::Standardizer;
use stat_analysis::summary;

/// Strategy: an n x m matrix of moderate finite values.
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(-1e3..1e3f64, cols),
        rows,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(rows in matrix_strategy(5, 3)) {
        let m = Matrix::from_rows(&rows).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(rows in matrix_strategy(8, 4)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let cov = m.covariance().unwrap();
        prop_assert!(cov.is_symmetric(1e-6));
        for i in 0..4 {
            prop_assert!(cov[(i, i)] >= -1e-9, "variance must be non-negative");
        }
    }

    #[test]
    fn correlation_entries_bounded(rows in matrix_strategy(10, 3)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let corr = m.correlation().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!(corr[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn eigen_preserves_trace_and_orthonormality(rows in matrix_strategy(6, 6)) {
        // Symmetrize: A = (M + M^T) / 2.
        let m = Matrix::from_rows(&rows).unwrap();
        let mt = m.transpose();
        let mut a = Matrix::zeros(6, 6).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                a[(i, j)] = (m[(i, j)] + mt[(i, j)]) / 2.0;
            }
        }
        let e = eigen::decompose_symmetric(&a).unwrap();
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * (1.0 + trace.abs()));
        let gram = e.vectors.transpose().matmul(&e.vectors).unwrap();
        let id = Matrix::identity(6).unwrap();
        prop_assert!(gram.max_abs_diff(&id).unwrap() < 1e-7);
    }

    #[test]
    fn standardizer_output_is_zero_mean(rows in matrix_strategy(12, 4)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let z = Standardizer::fit_transform(&m).unwrap();
        for mean in z.column_means() {
            prop_assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn pca_variance_ratios_sum_to_one_and_descend(rows in matrix_strategy(16, 5)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&m).unwrap();
        let ratios = pca.explained_variance_ratio();
        let sum: f64 = ratios.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(pca.eigenvalues().windows(2).all(|w| w[0] >= w[1] - 1e-9));
    }

    #[test]
    fn pca_scores_reproduce_eigenvalue_variances(rows in matrix_strategy(20, 4)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&m).unwrap();
        let scores = pca.scores(&m, 4).unwrap();
        let cov = scores.covariance().unwrap();
        for k in 0..4 {
            prop_assert!((cov[(k, k)] - pca.eigenvalues()[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn distance_table_matches_metric(rows in matrix_strategy(7, 3)) {
        let table = DistanceTable::from_rows(&rows, Metric::Euclidean).unwrap();
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let direct = Metric::Euclidean.distance(&rows[i], &rows[j]).unwrap();
                prop_assert!((table.get(i, j) - direct).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in prop::collection::vec(-100.0..100.0f64, 4),
        b in prop::collection::vec(-100.0..100.0f64, 4),
        c in prop::collection::vec(-100.0..100.0f64, 4),
    ) {
        let d = |x: &[f64], y: &[f64]| Metric::Euclidean.distance(x, y).unwrap();
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-9);
    }

    #[test]
    fn squared_euclidean_consistent(
        a in prop::collection::vec(-100.0..100.0f64, 5),
        b in prop::collection::vec(-100.0..100.0f64, 5),
    ) {
        let d = Metric::Euclidean.distance(&a, &b).unwrap();
        prop_assert!((squared_euclidean(&a, &b) - d * d).abs() < 1e-6);
    }

    #[test]
    fn clustering_cuts_partition_leaves(rows in matrix_strategy(9, 2)) {
        let tree = agglomerative(&rows, Linkage::Average, Metric::Euclidean).unwrap();
        for k in 1..=rows.len() {
            let labels = tree.cut(k).unwrap();
            prop_assert_eq!(labels.len(), rows.len());
            let distinct: std::collections::HashSet<_> = labels.iter().collect();
            prop_assert_eq!(distinct.len(), k);
            prop_assert!(labels.iter().all(|&l| l < k));
        }
    }

    #[test]
    fn sse_never_increases_with_more_clusters(rows in matrix_strategy(8, 3)) {
        let tree = agglomerative(&rows, Linkage::Ward, Metric::Euclidean).unwrap();
        let mut last = f64::INFINITY;
        for k in 1..=rows.len() {
            let labels = tree.cut(k).unwrap();
            let sse = total_sse(&rows, &labels).unwrap();
            prop_assert!(sse <= last + 1e-6, "sse rose from {last} to {sse} at k={k}");
            last = sse;
        }
        prop_assert!(last.abs() < 1e-9, "all-singletons SSE must be zero");
    }

    #[test]
    fn single_linkage_merge_heights_are_monotone(rows in matrix_strategy(8, 2)) {
        let tree = agglomerative(&rows, Linkage::Single, Metric::Euclidean).unwrap();
        let heights: Vec<f64> = tree.merges().iter().map(|m| m.height).collect();
        prop_assert!(heights.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }

    #[test]
    fn pareto_front_is_mutually_nondominating(
        costs in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..30)
    ) {
        let candidates: Vec<Candidate> = costs
            .iter()
            .enumerate()
            .map(|(id, &(a, b))| Candidate { id, cost_a: a, cost_b: b })
            .collect();
        let front = pareto_front(&candidates).unwrap();
        prop_assert!(!front.is_empty());
        for x in &front {
            for y in &front {
                prop_assert!(!x.dominates(y) || (x.cost_a == y.cost_a && x.cost_b == y.cost_b));
            }
        }
        // The knee is a member of the front.
        let knee = knee_point(&candidates).unwrap();
        prop_assert!(front.iter().any(|c| c.id == knee.id));
    }

    #[test]
    fn mean_bounded_by_extremes(xs in prop::collection::vec(-1e6..1e6f64, 1..50)) {
        let m = summary::mean(&xs).unwrap();
        let (lo, hi) = summary::min_max(&xs).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 3..40)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let a = summary::pearson(&xs, &ys).unwrap();
        let b = summary::pearson(&ys, &xs).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!(a.abs() <= 1.0 + 1e-9);
    }
}
