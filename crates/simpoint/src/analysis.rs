//! The representative-interval pipeline: profile → cluster → sparse replay
//! → reconstruct.
//!
//! Both passes consume clones of the same pristine generator and drive the
//! engine in identical interval-sized chunks, so at `force_k = n` (every
//! interval a medoid) the sparse pass replays the exact chunk sequence of
//! the profiling pass and the reconstruction is bit-identical to the
//! reference — the invariant that anchors the error reporting.

use stat_analysis::distance::Metric;
use stat_analysis::kmedoids::{k_medoids, KMedoids};
use stat_analysis::matrix::Matrix;
use stat_analysis::silhouette::mean_silhouette;
use stat_analysis::standardize::Standardizer;
use stat_analysis::StatsError;
use uarch_sim::config::SystemConfig;
use uarch_sim::counters::{Event, PerfSession};
use uarch_sim::engine::{Engine, WorkloadHints};
use uarch_sim::exec::{ExecPlan, UopSource};
use uarch_sim::timeline::IntervalSample;
use workload_synth::generator::TraceGenerator;

/// What the sparse replay does with the intervals between simulation
/// points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GapMode {
    /// Functionally warm the gap: every micro-op still updates caches and
    /// the branch predictor (state transitions bit-identical to a counted
    /// run, see `Engine::warm`), but nothing is counted or priced.
    /// Each medoid interval therefore starts from the exact state a full
    /// run would have given it, and the reconstruction error is purely
    /// the clustering approximation.
    #[default]
    Warm,
    /// Fast-forward the generator RNG-exactly and skip the engine
    /// entirely. Maximal speed, but medoid intervals run against stale
    /// (or cold) microarchitectural state; long-reuse-distance behaviour
    /// (L2/L3 hit rates) is not recoverable, so reconstruction errors are
    /// substantially larger. `warmup_intervals` lead-ins soften the
    /// short-distance part only.
    Skip,
}

/// Tuning knobs of one simpoint analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpointConfig {
    /// Desired number of profiling intervals when `interval_ops` is 0:
    /// the interval size becomes `total_ops / target_intervals`.
    pub target_intervals: usize,
    /// Explicit interval size in counted micro-ops; 0 derives it from
    /// `target_intervals`.
    pub interval_ops: u64,
    /// Largest k tried during accuracy-guided selection.
    pub max_k: usize,
    /// Selection target: the smallest k whose predicted headline
    /// reconstruction error (computed from the profiled interval counters,
    /// exact under [`GapMode::Warm`]) is at or below this budget wins. If
    /// no k within `max_k` meets it, the minimum-error candidate is used.
    pub error_budget: f64,
    /// Gap handling of the sparse replay (see [`GapMode`]).
    pub gap_mode: GapMode,
    /// In [`GapMode::Skip`], intervals functionally warmed immediately
    /// before each medoid to soften the cold-state transient after a
    /// fast-forward gap. Ignored under [`GapMode::Warm`], where every gap
    /// already warms.
    pub warmup_intervals: usize,
    /// Bypasses silhouette selection and clusters with exactly this k
    /// (clamped to the interval count). `Some(n)` turns the sparse replay
    /// into a full run — the exactness regression path.
    pub force_k: Option<usize>,
}

impl Default for SimpointConfig {
    fn default() -> Self {
        SimpointConfig {
            target_intervals: 60,
            interval_ops: 0,
            max_k: 12,
            error_budget: 0.05,
            gap_mode: GapMode::Warm,
            warmup_intervals: 1,
            force_k: None,
        }
    }
}

/// Why an analysis could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimpointError {
    /// The generator had no micro-ops left to profile.
    EmptyTrace,
    /// The clustering layer rejected its input.
    Stats(StatsError),
}

impl std::fmt::Display for SimpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimpointError::EmptyTrace => f.write_str("trace generator has no micro-ops"),
            SimpointError::Stats(e) => write!(f, "clustering failed: {e}"),
        }
    }
}

impl std::error::Error for SimpointError {}

impl From<StatsError> for SimpointError {
    fn from(e: StatsError) -> Self {
        SimpointError::Stats(e)
    }
}

/// The result of one representative-interval analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpointAnalysis {
    /// Counted micro-ops per profiling interval (the last interval may be
    /// shorter).
    pub interval_ops: u64,
    /// Micro-ops in the full run.
    pub total_ops: u64,
    /// Micro-ops that received detailed, counted simulation in the sparse
    /// replay (the medoid intervals).
    pub simulated_ops: u64,
    /// Micro-ops functionally warmed (state updates, nothing counted).
    pub warmed_ops: u64,
    /// Micro-ops fast-forwarded past without touching the engine.
    pub skipped_ops: u64,
    /// Mean silhouette of the chosen clustering (0.0 when k = 1, where it
    /// is undefined).
    pub silhouette: f64,
    /// Interval indices chosen as simulation points, ascending.
    pub medoids: Vec<usize>,
    /// Per-interval cluster assignment (indices into `medoids`).
    pub labels: Vec<usize>,
    /// Fraction of intervals each cluster owns; sums to 1.
    pub weights: Vec<f64>,
    /// Ground truth: the merged counters of the full profiling run.
    pub reference: PerfSession,
    /// The reconstruction: cluster-size-scaled sum of medoid counters.
    pub estimate: PerfSession,
}

impl SimpointAnalysis {
    /// Number of clusters (= number of simulation points).
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Number of profiling intervals.
    pub fn n_intervals(&self) -> usize {
        self.labels.len()
    }

    /// Reduction in detailed-simulated micro-ops:
    /// `total_ops / simulated_ops`. Under [`GapMode::Warm`] gap ops still
    /// execute the (cheaper) warming path; under [`GapMode::Skip`] they
    /// cost nothing at all.
    pub fn speedup(&self) -> f64 {
        self.total_ops as f64 / self.simulated_ops.max(1) as f64
    }

    /// Relative reconstruction error of one raw counter.
    pub fn counter_error(&self, event: Event) -> f64 {
        rel_error(
            self.reference.count(event) as f64,
            self.estimate.count(event) as f64,
        )
    }

    /// Relative error of the reconstructed IPC.
    pub fn ipc_error(&self) -> f64 {
        rel_error(self.reference.ipc(), self.estimate.ipc())
    }

    /// Relative error of a reconstructed misses-per-kilo-instruction rate.
    pub fn mpki_error(&self, miss_event: Event) -> f64 {
        rel_error(
            mpki(&self.reference, miss_event),
            mpki(&self.estimate, miss_event),
        )
    }

    /// Relative error of the reconstructed branch mispredict rate.
    pub fn mispredict_error(&self) -> f64 {
        rel_error(
            self.reference.mispredict_rate(),
            self.estimate.mispredict_rate(),
        )
    }

    /// The headline acceptance metric: the worst of the IPC error and the
    /// three per-level MPKI errors.
    pub fn max_headline_error(&self) -> f64 {
        headline_error(&self.reference, &self.estimate)
    }
}

/// Worst of the IPC error and the three per-level MPKI errors between two
/// counter files — the figure k-selection budgets and CI gates on.
fn headline_error(reference: &PerfSession, estimate: &PerfSession) -> f64 {
    let mut worst = rel_error(reference.ipc(), estimate.ipc());
    for ev in [
        Event::MemLoadUopsRetiredL1Miss,
        Event::MemLoadUopsRetiredL2Miss,
        Event::MemLoadUopsRetiredL3Miss,
    ] {
        worst = worst.max(rel_error(mpki(reference, ev), mpki(estimate, ev)));
    }
    worst
}

/// The counter file a clustering would reconstruct, computed from the
/// profiled interval sessions: each medoid's counters scaled by its
/// cluster's interval count. Under [`GapMode::Warm`] the sparse replay
/// reproduces these sessions bit-identically, so this prediction equals
/// the final estimate exactly; under [`GapMode::Skip`] it is optimistic.
fn predicted_estimate(
    samples: &[IntervalSample],
    medoids: &[usize],
    labels: &[usize],
) -> PerfSession {
    let mut counts = vec![0u64; medoids.len()];
    for &label in labels {
        counts[label] += 1;
    }
    let mut estimate = PerfSession::new();
    for (cluster, &m) in medoids.iter().enumerate() {
        for ev in Event::ALL {
            estimate.add(
                ev,
                samples[m].deltas.count(ev).saturating_mul(counts[cluster]),
            );
        }
    }
    estimate
}

/// Relative error of `estimate` against `reference`, with the degenerate
/// denominators pinned: both zero is a perfect 0.0, a zero reference with a
/// non-zero estimate is a full 1.0.
pub fn rel_error(reference: f64, estimate: f64) -> f64 {
    if reference.abs() < 1e-12 {
        if estimate.abs() < 1e-12 {
            0.0
        } else {
            1.0
        }
    } else {
        (estimate - reference).abs() / reference.abs()
    }
}

/// Misses per kilo-instruction of one event within a session.
fn mpki(session: &PerfSession, miss_event: Event) -> f64 {
    let inst = session.count(Event::InstRetiredAny);
    if inst == 0 {
        0.0
    } else {
        session.count(miss_event) as f64 * 1000.0 / inst as f64
    }
}

/// Runs the full pipeline against a pristine generator.
///
/// The generator is cloned twice (profiling pass, sparse replay); the
/// caller's instance is left untouched. `hints` should be the same workload
/// hints a full characterization run would use (in particular the
/// generator's `l2_bypass_range`).
///
/// # Errors
///
/// [`SimpointError::EmptyTrace`] when the generator is exhausted;
/// [`SimpointError::Stats`] when clustering rejects the feature matrix.
pub fn analyze(
    system: &SystemConfig,
    generator: &TraceGenerator,
    hints: &WorkloadHints,
    config: &SimpointConfig,
) -> Result<SimpointAnalysis, SimpointError> {
    let total_ops = generator.remaining();
    if total_ops == 0 {
        return Err(SimpointError::EmptyTrace);
    }
    let interval_ops = if config.interval_ops > 0 {
        config.interval_ops
    } else {
        (total_ops / config.target_intervals.max(1) as u64).max(1)
    };
    let n = total_ops.div_ceil(interval_ops) as usize;
    let plan = ExecPlan::new().hints(*hints);

    // Profiling pass: one engine, one chunked run per interval. The
    // per-chunk sessions *are* the interval deltas (state carries across
    // chunks on the engine), and their merge is the reference counter file.
    let mut profiler = Engine::new(system);
    let mut gen = generator.clone();
    let mut samples: Vec<IntervalSample> = Vec::with_capacity(n);
    let mut reference = PerfSession::new();
    let mut start = 0u64;
    while gen.remaining() > 0 {
        let take = interval_ops.min(gen.remaining());
        let session = profiler.execute((&mut gen).take_ops(take), &plan);
        reference.merge(&session);
        samples.push(IntervalSample {
            start_op: start,
            end_op: start + take,
            deltas: session,
        });
        start += take;
    }
    debug_assert_eq!(samples.len(), n);

    // Feature matrix: standardized so the mix fractions (≤ 1) and the MPKI
    // columns (tens) weigh equally in the distance.
    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| s.feature_vector().to_vec())
        .collect();
    let rows = standardize(&rows)?;
    let (clustering, silhouette) = choose_k(&rows, &samples, &reference, config)?;
    let medoids = clustering.medoids;
    let labels = clustering.labels;
    let k = medoids.len();

    let mut counts = vec![0u64; k];
    for &label in &labels {
        counts[label] += 1;
    }
    let weights: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();

    // Sparse replay on a fresh engine: detailed counted simulation for
    // medoid intervals only; gaps are functionally warmed or skipped per
    // the configured mode. Chunk boundaries match the profiling pass
    // one-for-one, so under GapMode::Warm every medoid session comes out
    // bit-identical to its profiled interval.
    #[derive(Clone, Copy, PartialEq)]
    enum Step {
        Detail,
        Warm,
        Skip,
    }
    let gap_step = match config.gap_mode {
        GapMode::Warm => Step::Warm,
        GapMode::Skip => Step::Skip,
    };
    let mut steps = vec![gap_step; n];
    if config.gap_mode == GapMode::Skip {
        for &m in &medoids {
            for step in &mut steps[m - config.warmup_intervals.min(m)..m] {
                *step = Step::Warm;
            }
        }
    }
    for &m in &medoids {
        steps[m] = Step::Detail;
    }
    let mut replayer = Engine::new(system);
    let mut gen = generator.clone();
    let (mut simulated_ops, mut warmed_ops, mut skipped_ops) = (0u64, 0u64, 0u64);
    let mut medoid_sessions: Vec<Option<PerfSession>> = vec![None; n];
    for (i, step) in steps.iter().enumerate() {
        let len = interval_ops.min(gen.remaining());
        match step {
            Step::Detail => {
                let session = replayer.execute((&mut gen).take_ops(len), &plan);
                simulated_ops += len;
                medoid_sessions[i] = Some(session);
            }
            Step::Warm => {
                replayer.warm((&mut gen).take_ops(len), hints);
                warmed_ops += len;
            }
            Step::Skip => {
                gen.fast_forward(len);
                skipped_ops += len;
            }
        }
    }

    // Reconstruction: each medoid's counters stand for every interval of
    // its cluster, so scale by the cluster's interval count. Integer
    // arithmetic end to end — at k = n this telescopes back to the
    // reference exactly.
    let mut estimate = PerfSession::new();
    for (cluster, &m) in medoids.iter().enumerate() {
        let session = medoid_sessions[m]
            .take()
            .expect("medoid interval was simulated");
        for ev in Event::ALL {
            estimate.add(ev, session.count(ev).saturating_mul(counts[cluster]));
        }
    }

    Ok(SimpointAnalysis {
        interval_ops,
        total_ops,
        simulated_ops,
        warmed_ops,
        skipped_ops,
        silhouette,
        medoids,
        labels,
        weights,
        reference,
        estimate,
    })
}

/// Standardizes the feature rows column-wise (identity for a single row,
/// where scale is undefined).
fn standardize(rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, StatsError> {
    if rows.len() < 2 {
        return Ok(rows.to_vec());
    }
    let z = Standardizer::fit_transform(&Matrix::from_rows(rows)?)?;
    Ok(z.iter_rows().map(|r| r.to_vec()).collect())
}

/// Picks k and clusters: the smallest k in `1..=max_k` whose predicted
/// reconstruction error meets `error_budget` (maximal speedup among the
/// acceptable clusterings), the minimum-error candidate if none does, or
/// exactly `force_k`. The mean silhouette of the winner is reported as the
/// phase-separation confidence score.
///
/// Silhouette alone is deliberately not the selector: it measures how
/// geometrically separated the phases are, and a run whose phases sit close
/// in feature space (low silhouette) can still need k > 1 to reconstruct
/// its counters — collapsing such a run to one medoid is exactly the
/// failure mode that blows up tail-counter errors (e.g. a compulsory-miss
/// fill phase whose L3 traffic a steady-state medoid cannot represent).
fn choose_k(
    rows: &[Vec<f64>],
    samples: &[IntervalSample],
    reference: &PerfSession,
    config: &SimpointConfig,
) -> Result<(KMedoids, f64), SimpointError> {
    let n = rows.len();
    let silhouette_of = |clustering: &KMedoids| {
        if clustering.medoids.len() < 2 {
            0.0
        } else {
            mean_silhouette(rows, &clustering.labels, Metric::Euclidean).unwrap_or(0.0)
        }
    };
    if let Some(forced) = config.force_k {
        let clustering = k_medoids(rows, forced.clamp(1, n), Metric::Euclidean)?;
        let silhouette = silhouette_of(&clustering);
        return Ok((clustering, silhouette));
    }
    let mut fallback: Option<(KMedoids, f64, f64)> = None;
    for k in 1..=config.max_k.min(n) {
        let clustering = k_medoids(rows, k, Metric::Euclidean)?;
        let estimate = predicted_estimate(samples, &clustering.medoids, &clustering.labels);
        let error = headline_error(reference, &estimate);
        if error <= config.error_budget {
            let silhouette = silhouette_of(&clustering);
            return Ok((clustering, silhouette));
        }
        if fallback.as_ref().is_none_or(|&(_, _, e)| error < e) {
            let silhouette = silhouette_of(&clustering);
            fallback = Some((clustering, silhouette, error));
        }
    }
    let (clustering, silhouette, _) = fallback.expect("max_k >= 1 candidate evaluated");
    Ok((clustering, silhouette))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_synth::generator::TraceScale;
    use workload_synth::profile::Behavior;

    fn system() -> SystemConfig {
        SystemConfig::haswell_e5_2650l_v3()
    }

    fn generator(ops: u64) -> TraceGenerator {
        TraceGenerator::new(&Behavior::default(), &system(), 7, ops).unwrap()
    }

    fn hints_for(gen: &TraceGenerator) -> WorkloadHints {
        WorkloadHints {
            l2_bypass_range: Some(gen.l2_bypass_range()),
            ..WorkloadHints::default()
        }
    }

    #[test]
    fn empty_generator_is_rejected() {
        let gen = generator(0);
        let hints = hints_for(&gen);
        let err = analyze(&system(), &gen, &hints, &SimpointConfig::default()).unwrap_err();
        assert_eq!(err, SimpointError::EmptyTrace);
    }

    #[test]
    fn force_k_equal_to_intervals_is_bit_exact() {
        let gen = generator(60_000);
        let hints = hints_for(&gen);
        let config = SimpointConfig {
            interval_ops: 5_000,
            force_k: Some(12),
            ..SimpointConfig::default()
        };
        let a = analyze(&system(), &gen, &hints, &config).unwrap();
        assert_eq!(a.n_intervals(), 12);
        assert_eq!(a.k(), 12);
        assert_eq!(a.simulated_ops, a.total_ops);
        assert_eq!(
            a.estimate, a.reference,
            "k = n reconstruction must be bit-identical"
        );
        assert_eq!(a.max_headline_error(), 0.0);
        for ev in Event::ALL {
            assert_eq!(a.counter_error(ev), 0.0, "{ev}");
        }
    }

    #[test]
    fn default_selection_cuts_simulated_ops_within_error_budget() {
        let gen = generator(300_000);
        let hints = hints_for(&gen);
        let a = analyze(&system(), &gen, &hints, &SimpointConfig::default()).unwrap();
        assert_eq!(a.total_ops, 300_000);
        assert_eq!(a.n_intervals(), 60);
        assert!(a.k() >= 1 && a.k() <= 12);
        assert!(
            a.speedup() >= 5.0,
            "speedup {:.1}x below the acceptance floor",
            a.speedup()
        );
        assert!(
            a.max_headline_error() <= 0.05,
            "headline error {:.2}% above 5%",
            a.max_headline_error() * 100.0
        );
        // Invariants the lint family assumes.
        let weight_sum: f64 = a.weights.iter().sum();
        assert!((weight_sum - 1.0).abs() < 1e-9);
        assert!(a.medoids.windows(2).all(|w| w[0] < w[1]));
        assert!(a.labels.iter().all(|&l| l < a.k()));
        assert_eq!(a.reference.count(Event::InstRetiredAny), a.total_ops);
    }

    #[test]
    fn analysis_is_deterministic() {
        let gen = generator(100_000);
        let hints = hints_for(&gen);
        let config = SimpointConfig::default();
        let a = analyze(&system(), &gen, &hints, &config).unwrap();
        let b = analyze(&system(), &gen, &hints, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn caller_generator_is_untouched() {
        let gen = generator(50_000);
        let hints = hints_for(&gen);
        analyze(&system(), &gen, &hints, &SimpointConfig::default()).unwrap();
        assert_eq!(gen.remaining(), 50_000);
    }

    #[test]
    fn interval_size_derives_from_target() {
        let gen = generator(120_000);
        let hints = hints_for(&gen);
        let config = SimpointConfig {
            target_intervals: 30,
            ..SimpointConfig::default()
        };
        let a = analyze(&system(), &gen, &hints, &config).unwrap();
        assert_eq!(a.interval_ops, 4_000);
        assert_eq!(a.n_intervals(), 30);
    }

    #[test]
    fn quick_scale_pair_meets_acceptance_floor() {
        // The same path the reproduce binary's --simpoint mode takes, on a
        // real roster profile at quick scale.
        let apps = workload_synth::cpu2017::suite();
        let app = apps.iter().find(|a| a.name == "505.mcf_r").unwrap();
        let pair = &app.pairs(workload_synth::profile::InputSize::Ref)[0];
        let system = system();
        let gen = TraceGenerator::from_pair(pair, &system, &TraceScale::quick()).unwrap();
        let hints = hints_for(&gen);
        let a = analyze(&system, &gen, &hints, &SimpointConfig::default()).unwrap();
        assert!(a.speedup() >= 5.0, "speedup {:.1}x", a.speedup());
        assert!(
            a.max_headline_error() <= 0.05,
            "error {:.2}%",
            a.max_headline_error() * 100.0
        );
    }

    #[test]
    fn rel_error_degenerate_cases() {
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert_eq!(rel_error(0.0, 3.0), 1.0);
        assert!((rel_error(2.0, 1.0) - 0.5).abs() < 1e-12);
        assert!((rel_error(2.0, 3.0) - 0.5).abs() < 1e-12);
    }
}
