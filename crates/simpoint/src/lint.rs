//! S-rule checks over simpoint artifacts: the structural invariants the
//! reconstruction math and `simpoint-report` silently assume.
//!
//! Rule logic lives here, next to the records it audits; the stable codes,
//! severities, and explanations live in simcheck's catalog like every other
//! family. `lint --simpoint [DIR]` (and `--all` over `results/simpoints/`)
//! drives [`audit_store`].

use simcheck::{codes, Diagnostic, Report, Span};
use simstore::Store;
use uarch_sim::counters::Event;

use crate::artifact::SimpointRecord;

/// Audits one decoded record (loaded from `object`, used for diagnostic
/// spans) against the S-rule family, collecting every violation.
pub fn check_record(object: &str, record: &SimpointRecord) -> Report {
    let mut report = Report::new();
    let n = record.n_intervals();
    let k = record.k();

    // S004: the interval grid and counter bookkeeping must describe one
    // run. Everything below indexes through these, so mismatches here make
    // the remaining rules' findings noise rather than signal.
    if record.interval_ops == 0 || k == 0 || n == 0 {
        report.push(Diagnostic::new(
            &codes::S004,
            Span::object(object),
            format!(
                "degenerate record: interval_ops={}, k={k}, n_intervals={n}",
                record.interval_ops
            ),
        ));
        return report;
    }
    let floor = record.interval_ops * (n as u64 - 1);
    let ceil = record.interval_ops * n as u64;
    if record.total_ops <= floor || record.total_ops > ceil {
        report.push(Diagnostic::new(
            &codes::S004,
            Span::field(object, "total_ops"),
            format!(
                "{} total ops do not fit {n} intervals of {} ops",
                record.total_ops, record.interval_ops
            ),
        ));
    }
    if record.simulated_ops.saturating_add(record.warmed_ops) > record.total_ops {
        report.push(Diagnostic::new(
            &codes::S004,
            Span::field(object, "simulated_ops"),
            format!(
                "simulated {} + warmed {} ops exceed the run's {}",
                record.simulated_ops, record.warmed_ops, record.total_ops
            ),
        ));
    }
    if record.weights.len() != k {
        report.push(Diagnostic::new(
            &codes::S004,
            Span::field(object, "weights"),
            format!("{} weights for {k} clusters", record.weights.len()),
        ));
    }
    let inst = record.reference[Event::InstRetiredAny as usize];
    if inst != record.total_ops {
        report.push(Diagnostic::new(
            &codes::S004,
            Span::field(object, "reference"),
            format!(
                "reference inst_retired.any {inst} != total_ops {} (one retired \
                 instruction per counted micro-op)",
                record.total_ops
            ),
        ));
    }
    if let Some(bad) = record.labels.iter().find(|&&l| l as usize >= k) {
        report.push(Diagnostic::new(
            &codes::S004,
            Span::field(object, "labels"),
            format!("label {bad} out of range for {k} clusters"),
        ));
    }

    // S001: weights partition the run.
    if record.weights.len() == k {
        let sum: f64 = record.weights.iter().sum();
        if record.weights.iter().any(|&w| w <= 0.0 || w > 1.0) {
            report.push(Diagnostic::new(
                &codes::S001,
                Span::field(object, "weights"),
                format!("weights outside (0, 1]: {:?}", record.weights),
            ));
        } else if (sum - 1.0).abs() > 1e-6 {
            report.push(Diagnostic::new(
                &codes::S001,
                Span::field(object, "weights"),
                format!("weights sum to {sum}, not 1"),
            ));
        }
    }

    // S002: every cluster owns at least one interval.
    for cluster in 0..k {
        if !record.labels.iter().any(|&l| l as usize == cluster) {
            report.push(Diagnostic::new(
                &codes::S002,
                Span::field(object, "labels"),
                format!("cluster {cluster} has no member intervals"),
            ));
        }
    }

    // S003: medoids are unique, in range, and members of their own cluster.
    let mut seen = std::collections::HashSet::new();
    for (cluster, &m) in record.medoids.iter().enumerate() {
        let m = m as usize;
        if !seen.insert(m) {
            report.push(Diagnostic::new(
                &codes::S003,
                Span::field(object, "medoids"),
                format!("medoid interval {m} appears more than once"),
            ));
            continue;
        }
        if m >= n {
            report.push(Diagnostic::new(
                &codes::S003,
                Span::field(object, "medoids"),
                format!("medoid interval {m} out of range for {n} intervals"),
            ));
        } else if record.labels[m] as usize != cluster {
            report.push(Diagnostic::new(
                &codes::S003,
                Span::field(object, "medoids"),
                format!(
                    "medoid {m} of cluster {cluster} is labelled {}",
                    record.labels[m]
                ),
            ));
        }
    }

    report
}

/// Audits every entry of a simpoint store: undecodable payloads fire S005,
/// decodable ones run through [`check_record`]. Returns the entry count
/// alongside the merged report.
pub fn audit_store(store: &Store) -> (usize, Report) {
    let mut report = Report::new();
    let keys = store.keys();
    for key in &keys {
        let object = format!("simpoint:{key}");
        let Some(payload) = store.get(*key) else {
            continue;
        };
        match SimpointRecord::decode(&payload) {
            Ok(record) => {
                report.merge(check_record(&format!("simpoint:{}", record.id), &record));
            }
            Err(e) => {
                report.push(Diagnostic::new(
                    &codes::S005,
                    Span::object(object),
                    format!("payload does not decode as a simpoint record: {e}"),
                ));
            }
        }
    }
    (keys.len(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_sim::counters::Event;

    fn good() -> SimpointRecord {
        let mut reference = [0u64; Event::ALL.len()];
        let mut estimate = [0u64; Event::ALL.len()];
        reference[0] = 40_000;
        estimate[0] = 40_000;
        SimpointRecord {
            id: "505.mcf_r/ref/in1".to_string(),
            interval_ops: 10_000,
            total_ops: 40_000,
            simulated_ops: 20_000,
            warmed_ops: 20_000,
            silhouette: 0.5,
            medoids: vec![1, 3],
            labels: vec![0, 0, 1, 1],
            weights: vec![0.5, 0.5],
            reference,
            estimate,
        }
    }

    fn codes_of(report: &Report) -> Vec<&'static str> {
        report.diagnostics().iter().map(|d| d.code.code).collect()
    }

    #[test]
    fn valid_record_lints_clean() {
        let report = check_record("simpoint:test", &good());
        assert!(report.is_empty(), "{}", report.to_table());
    }

    #[test]
    fn each_rule_fires_on_its_violation() {
        let mut r = good();
        r.weights = vec![0.5, 0.4];
        assert!(codes_of(&check_record("o", &r)).contains(&"S001"));

        let mut r = good();
        r.labels = vec![0, 0, 0, 0];
        let codes = codes_of(&check_record("o", &r));
        assert!(codes.contains(&"S002"), "{codes:?}");

        let mut r = good();
        r.medoids = vec![1, 9];
        assert!(codes_of(&check_record("o", &r)).contains(&"S003"));

        let mut r = good();
        r.medoids = vec![1, 2]; // interval 2 belongs to cluster 1, not 0
        r.medoids[0] = 2;
        r.medoids[1] = 3;
        assert!(codes_of(&check_record("o", &r)).contains(&"S003"));

        let mut r = good();
        r.total_ops = 99_000;
        let codes = codes_of(&check_record("o", &r));
        assert!(codes.contains(&"S004"), "{codes:?}");

        let mut r = good();
        r.reference[0] = 1;
        assert!(codes_of(&check_record("o", &r)).contains(&"S004"));
    }

    #[test]
    fn degenerate_record_short_circuits_with_s004() {
        let mut r = good();
        r.labels.clear();
        let report = check_record("o", &r);
        assert_eq!(codes_of(&report), vec!["S004"]);
    }
}
