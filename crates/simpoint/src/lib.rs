//! SimPoint-style representative-interval simulation.
//!
//! The paper subsets *applications* to cut CPU2017's redundancy; this crate
//! applies the same clustering argument one level down, to the *execution
//! intervals* of a single run (Sherwood et al.'s SimPoint methodology).
//! A run is profiled once in fixed-size micro-op intervals, each interval is
//! summarized by a feature vector (µop-mix fractions plus IPC / MPKI /
//! mispredict deltas — a basic-block-vector stand-in, see
//! [`uarch_sim::timeline::IntervalSample::feature_vector`]), the vectors are
//! standardized and clustered with k-medoids (k chosen as the smallest
//! value whose predicted reconstruction error meets the configured budget,
//! with the mean silhouette reported as a phase-separation confidence
//! score), and only the medoid interval of each cluster is then simulated
//! in detail. The intervals in between are functionally warmed by default
//! — state transitions bit-identical to a counted run, nothing priced
//! ([`analysis::GapMode::Warm`]) — or, in the maximum-speed mode, the
//! generator is RNG-exactly fast-forwarded past them
//! ([`workload_synth::generator::TraceGenerator::fast_forward`]). Whole-run
//! counters are reconstructed as the cluster-size-scaled sum of medoid
//! counters, and the crate reports the achieved speedup (total / detailed
//! ops) alongside the per-counter relative error of the reconstruction.
//!
//! Three layers:
//!
//! - [`analysis`] — the end-to-end pipeline: profile, cluster, sparse
//!   replay, reconstruct ([`analysis::analyze`]).
//! - [`artifact`] — the schema-versioned binary [`artifact::SimpointRecord`]
//!   persisted through the content-addressed store under
//!   `results/simpoints/`.
//! - [`lint`] — the simcheck S-rule family over stored records
//!   (`lint --simpoint`).
//!
//! The key exactness property, pinned by tests here and in the workspace
//! suite: with `force_k` equal to the number of intervals (every interval
//! its own cluster), the sparse replay degenerates to a full chunked run
//! and the reconstructed counters are **bit-identical** to the reference.

pub mod analysis;
pub mod artifact;
pub mod lint;

pub use analysis::{analyze, rel_error, GapMode, SimpointAnalysis, SimpointConfig, SimpointError};
pub use artifact::{SimpointRecord, SIMPOINT_SCHEMA_VERSION};
