//! The persisted simpoint artifact: a schema-versioned binary record, one
//! per (pair, system, simpoint-config) triple, written through the
//! content-addressed store under `results/simpoints/`.
//!
//! The record is self-contained: besides the clustering itself (medoids,
//! labels, weights) it carries both the reference and the reconstructed
//! counter files in [`Event::ALL`] order, so `simpoint-report` and the
//! S-rule lints can recompute every speedup and error figure without
//! re-simulating anything.

use simstore::{CodecError, Decoder, Encoder};
use uarch_sim::counters::{Event, PerfSession};

use crate::analysis::{rel_error, SimpointAnalysis};

/// Version stamp of the encoded record layout.
pub const SIMPOINT_SCHEMA_VERSION: u32 = 1;

/// Leading magic of every encoded simpoint record.
const MAGIC: &[u8; 4] = b"SPNT";

/// One analyzed pair's simpoint result, as stored on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpointRecord {
    /// Pair identity, e.g. `505.mcf_r/ref/in1`.
    pub id: String,
    /// Counted micro-ops per profiling interval.
    pub interval_ops: u64,
    /// Micro-ops in the full run.
    pub total_ops: u64,
    /// Micro-ops the sparse replay simulated in detail (medoid intervals).
    pub simulated_ops: u64,
    /// Micro-ops functionally warmed between simulation points.
    pub warmed_ops: u64,
    /// Mean silhouette of the chosen clustering (0.0 when k = 1).
    pub silhouette: f64,
    /// Interval indices chosen as simulation points, ascending.
    pub medoids: Vec<u32>,
    /// Per-interval cluster assignment (indices into `medoids`).
    pub labels: Vec<u32>,
    /// Fraction of intervals each cluster owns.
    pub weights: Vec<f64>,
    /// Ground-truth counters of the full run, in [`Event::ALL`] order.
    pub reference: [u64; Event::ALL.len()],
    /// Reconstructed counters, in [`Event::ALL`] order.
    pub estimate: [u64; Event::ALL.len()],
}

impl SimpointRecord {
    /// Packages an analysis result under a pair id.
    pub fn from_analysis(id: &str, analysis: &SimpointAnalysis) -> Self {
        let mut reference = [0u64; Event::ALL.len()];
        let mut estimate = [0u64; Event::ALL.len()];
        for (slot, ev) in Event::ALL.iter().enumerate() {
            reference[slot] = analysis.reference.count(*ev);
            estimate[slot] = analysis.estimate.count(*ev);
        }
        SimpointRecord {
            id: id.to_string(),
            interval_ops: analysis.interval_ops,
            total_ops: analysis.total_ops,
            simulated_ops: analysis.simulated_ops,
            warmed_ops: analysis.warmed_ops,
            silhouette: analysis.silhouette,
            medoids: analysis.medoids.iter().map(|&m| m as u32).collect(),
            labels: analysis.labels.iter().map(|&l| l as u32).collect(),
            weights: analysis.weights.clone(),
            reference,
            estimate,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Number of profiling intervals.
    pub fn n_intervals(&self) -> usize {
        self.labels.len()
    }

    /// The stored reference counters as a session.
    pub fn reference_session(&self) -> PerfSession {
        session_from(&self.reference)
    }

    /// The stored reconstructed counters as a session.
    pub fn estimate_session(&self) -> PerfSession {
        session_from(&self.estimate)
    }

    /// Reduction in simulated micro-ops.
    pub fn speedup(&self) -> f64 {
        self.total_ops as f64 / self.simulated_ops.max(1) as f64
    }

    /// Relative error of the reconstructed IPC.
    pub fn ipc_error(&self) -> f64 {
        rel_error(
            self.reference_session().ipc(),
            self.estimate_session().ipc(),
        )
    }

    /// Relative error of a reconstructed MPKI rate.
    pub fn mpki_error(&self, miss_event: Event) -> f64 {
        let reference = self.reference_session();
        let estimate = self.estimate_session();
        rel_error(mpki(&reference, miss_event), mpki(&estimate, miss_event))
    }

    /// The worst of the IPC error and the three per-level MPKI errors —
    /// the figure `simpoint-report --max-error` gates on.
    pub fn max_headline_error(&self) -> f64 {
        self.ipc_error()
            .max(self.mpki_error(Event::MemLoadUopsRetiredL1Miss))
            .max(self.mpki_error(Event::MemLoadUopsRetiredL2Miss))
            .max(self.mpki_error(Event::MemLoadUopsRetiredL3Miss))
    }

    /// Serializes the record (magic, schema version, then fields in
    /// declaration order; vectors are length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(MAGIC);
        e.put_u32(SIMPOINT_SCHEMA_VERSION);
        e.put_str(&self.id);
        e.put_u64(self.interval_ops);
        e.put_u64(self.total_ops);
        e.put_u64(self.simulated_ops);
        e.put_u64(self.warmed_ops);
        e.put_f64(self.silhouette);
        e.put_u32(self.medoids.len() as u32);
        for &m in &self.medoids {
            e.put_u32(m);
        }
        e.put_u32(self.labels.len() as u32);
        for &l in &self.labels {
            e.put_u32(l);
        }
        e.put_u32(self.weights.len() as u32);
        for &w in &self.weights {
            e.put_f64(w);
        }
        for &c in &self.reference {
            e.put_u64(c);
        }
        for &c in &self.estimate {
            e.put_u64(c);
        }
        e.into_bytes()
    }

    /// Deserializes a record, failing loudly on foreign or damaged bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMagic`] / [`CodecError::UnsupportedVersion`] for
    /// foreign payloads, and the usual truncation / trailing-byte errors
    /// for damaged ones.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        if d.take_bytes(MAGIC.len())? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = d.take_u32()?;
        if version != SIMPOINT_SCHEMA_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                expected: SIMPOINT_SCHEMA_VERSION,
            });
        }
        let id = d.take_str()?;
        let interval_ops = d.take_u64()?;
        let total_ops = d.take_u64()?;
        let simulated_ops = d.take_u64()?;
        let warmed_ops = d.take_u64()?;
        let silhouette = d.take_f64()?;
        let k = d.take_u32()? as usize;
        let mut medoids = Vec::new();
        for _ in 0..k {
            medoids.push(d.take_u32()?);
        }
        let n = d.take_u32()? as usize;
        let mut labels = Vec::new();
        for _ in 0..n {
            labels.push(d.take_u32()?);
        }
        let w = d.take_u32()? as usize;
        let mut weights = Vec::new();
        for _ in 0..w {
            weights.push(d.take_f64()?);
        }
        let mut reference = [0u64; Event::ALL.len()];
        for slot in &mut reference {
            *slot = d.take_u64()?;
        }
        let mut estimate = [0u64; Event::ALL.len()];
        for slot in &mut estimate {
            *slot = d.take_u64()?;
        }
        d.finish()?;
        Ok(SimpointRecord {
            id,
            interval_ops,
            total_ops,
            simulated_ops,
            warmed_ops,
            silhouette,
            medoids,
            labels,
            weights,
            reference,
            estimate,
        })
    }
}

fn session_from(counts: &[u64; Event::ALL.len()]) -> PerfSession {
    let mut s = PerfSession::new();
    for (slot, ev) in Event::ALL.iter().enumerate() {
        s.set(*ev, counts[slot]);
    }
    s
}

fn mpki(session: &PerfSession, miss_event: Event) -> f64 {
    let inst = session.count(Event::InstRetiredAny);
    if inst == 0 {
        0.0
    } else {
        session.count(miss_event) as f64 * 1000.0 / inst as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record() -> SimpointRecord {
        let mut reference = [0u64; Event::ALL.len()];
        let mut estimate = [0u64; Event::ALL.len()];
        reference[0] = 40_000; // inst_retired.any == total_ops
        reference[1] = 20_000;
        estimate[0] = 40_000;
        estimate[1] = 20_400;
        SimpointRecord {
            id: "505.mcf_r/ref/in1".to_string(),
            interval_ops: 10_000,
            total_ops: 40_000,
            simulated_ops: 20_000,
            warmed_ops: 20_000,
            silhouette: 0.62,
            medoids: vec![1, 3],
            labels: vec![0, 0, 1, 1],
            weights: vec![0.5, 0.5],
            reference,
            estimate,
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let record = sample_record();
        let decoded = SimpointRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn foreign_and_damaged_payloads_fail_loudly() {
        assert_eq!(
            SimpointRecord::decode(b"not a simpoint record"),
            Err(CodecError::BadMagic)
        );
        let mut future = sample_record().encode();
        future[4] = 0xFF; // bump the little-endian version field
        assert!(matches!(
            SimpointRecord::decode(&future),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let bytes = sample_record().encode();
        assert!(SimpointRecord::decode(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = sample_record().encode();
        trailing.push(0);
        assert_eq!(
            SimpointRecord::decode(&trailing),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn derived_metrics_match_counters() {
        let record = sample_record();
        assert!((record.speedup() - 2.0).abs() < 1e-12);
        // Estimate cycles 2% high → IPC 2% low (1/1.02 relative).
        let expected = rel_error(2.0, 40_000.0 / 20_400.0);
        assert!((record.ipc_error() - expected).abs() < 1e-12);
        assert_eq!(record.k(), 2);
        assert_eq!(record.n_intervals(), 4);
    }
}
