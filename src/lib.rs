//! Umbrella crate for the SPEC CPU2017 workload-characterization reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real APIs:
//!
//! - [`workload_synth`] — synthetic SPEC-like workload profiles and generators.
//! - [`uarch_sim`] — cache / branch-predictor / pipeline simulator with perf-style counters.
//! - [`stat_analysis`] — PCA, hierarchical clustering, Pareto analysis.
//! - [`simstore`] — content-addressed result store + fault-tolerant scheduler.
//! - [`simrace`] — happens-before race checker and schedule-exploration harness.
//! - [`simcheck`] — static model-analysis diagnostics (rule codes, spans, renderers).
//! - [`perfmon`] — structured span/event observability with a JSONL sink.
//! - [`simmetrics`] — process-wide metrics registry, exporters, and flight recorder.
//! - [`simpoint`] — phase detection and representative-interval simulation.
//! - [`workchar`] — the paper's characterization + subsetting pipeline.
//! - [`simreport`] — table and figure rendering.

pub use perfmon;
pub use simcheck;
pub use simmetrics;
pub use simpoint;
pub use simrace;
pub use simreport;
pub use simstore;
pub use stat_analysis;
pub use uarch_sim;
pub use workchar;
pub use workload_synth;
