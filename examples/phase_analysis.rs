//! The paper's future work, demonstrated: detect execution phases in a
//! multi-phase workload and pick SimPoint-style simulation points.
//!
//! ```text
//! cargo run --release --example phase_analysis
//! ```

use spec2017_workchar::uarch_sim::config::SystemConfig;
use spec2017_workchar::uarch_sim::engine::WorkloadHints;
use spec2017_workchar::workchar::phase::analyze_phases;
use spec2017_workchar::workload_synth::phases::demo_three_phase;

fn main() {
    let config = SystemConfig::haswell_e5_2650l_v3();
    let workload = demo_three_phase();
    println!(
        "running '{}' ({} phases by construction) in 40 windows...\n",
        workload.name,
        workload.phases().len()
    );
    let trace: Vec<_> = workload.trace(&config, 42, 600_000).collect();
    let analysis = analyze_phases(trace, &config, &WorkloadHints::default(), 40, 6)
        .expect("phase analysis succeeds");

    println!(
        "detected {} phases (silhouette {:.3})",
        analysis.n_phases, analysis.silhouette
    );
    println!("\nper-window phase labels (execution order):");
    print!("  ");
    for &label in &analysis.labels {
        print!("{label}");
    }
    println!("\n\nchosen simulation points:");
    for p in &analysis.points {
        let w = &analysis.windows[p.window];
        println!(
            "  window {:>2}  phase {}  weight {:.2}  (IPC {:.2}, L1 miss {:.1}%, stores {:.1}%)",
            p.window,
            p.phase,
            p.weight,
            w.ipc(),
            w.l1_miss_rate() * 100.0,
            w.store_fraction() * 100.0,
        );
    }
    println!(
        "\nwhole-run IPC     : {:.3}\nsimulation-point  : {:.3} (from {:.0}% of the windows)",
        analysis.full_ipc(),
        analysis.estimated_ipc(),
        analysis.simulation_fraction() * 100.0
    );
    println!("\nSimulating only the chosen windows, weighted by phase share,");
    println!("reconstructs whole-program metrics — the methodology the paper");
    println!("proposes to make even the subsetted suite simulable.");
}
