//! Quickstart: characterize one SPEC CPU2017 application–input pair on the
//! simulated Haswell system and print what the paper would report for it.
//!
//! ```text
//! cargo run --release --example quickstart [app-name]
//! ```

use spec2017_workchar::uarch_sim::counters::Event;
use spec2017_workchar::workchar::characterize::{characterize_pair, RunConfig};
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "505.mcf_r".to_owned());
    let Some(app) = cpu2017::app(&name) else {
        eprintln!("unknown application '{name}'; try e.g. 505.mcf_r, 525.x264_r, 619.lbm_s");
        std::process::exit(2);
    };

    let config = RunConfig::default();
    println!(
        "characterizing {name} (ref input) on {} ...\n",
        config.system.name
    );

    for pair in app.pairs(InputSize::Ref) {
        let r = characterize_pair(&pair, &config).expect("pair characterizes cleanly");
        println!("== {} ==", r.id);
        println!("  simulated micro-ops        : {}", r.sim_ops);
        println!(
            "  instructions (paper scale) : {:.1} billion",
            r.instructions_billions
        );
        println!("  IPC                        : {:.3}", r.ipc);
        println!(
            "  instruction mix            : {:.1}% loads, {:.1}% stores, {:.1}% branches",
            r.load_pct, r.store_pct, r.branch_pct
        );
        println!(
            "  cache miss rates           : L1 {:.2}%  L2 {:.2}%  L3 {:.2}% (local)",
            r.l1_miss_pct, r.l2_miss_pct, r.l3_miss_pct
        );
        println!("  branch mispredict rate     : {:.3}%", r.mispredict_pct);
        println!(
            "  footprint                  : RSS {:.3} GiB, VSZ {:.3} GiB",
            r.rss_gib, r.vsz_gib
        );
        println!(
            "  projected execution time   : {:.1} s (paper scale)",
            r.projected_seconds
        );
        println!("\n  raw counters (perf-style):");
        for event in Event::ALL {
            println!("    {:>14}  {}", r.session.count(event), event.perf_flag());
        }
        println!();
    }
}
