//! Calibration report: target vs measured for every CPU2017 application at
//! `ref` — the evidence behind EXPERIMENTS.md's fidelity claims.
//!
//! ```text
//! cargo run --release --example calibration_report
//! ```

use spec2017_workchar::simreport::table::{num, Table};
use spec2017_workchar::workchar::characterize::{characterize_suite, RunConfig};
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

fn main() {
    let config = RunConfig::default();
    let apps = cpu2017::suite();
    println!("characterizing all CPU2017 ref pairs (this takes a minute)...\n");
    let records =
        characterize_suite(&apps, InputSize::Ref, &config).expect("suite characterizes cleanly");

    let mut table = Table::new(
        "Calibration: measured / target at ref",
        &[
            "Pair",
            "IPC",
            "L1 miss %",
            "L2 miss %",
            "L3 miss %",
            "Mispred %",
        ],
    );
    table.numeric();
    let mut ipc_err = Vec::new();
    for app in &apps {
        for pair in app.pairs(InputSize::Ref) {
            let b = &pair.input.behavior;
            let r = records
                .iter()
                .find(|r| r.id == pair.id())
                .expect("record exists");
            ipc_err.push(((r.ipc - b.ipc_target) / b.ipc_target).abs());
            let cell = |measured: f64, target: f64, prec: usize| {
                format!("{} / {}", num(measured, prec), num(target, prec))
            };
            table.row(vec![
                r.id.clone(),
                cell(r.ipc, b.ipc_target, 2),
                cell(r.l1_miss_pct, b.l1_miss_target * 100.0, 1),
                cell(r.l2_miss_pct, b.l2_miss_target * 100.0, 1),
                cell(r.l3_miss_pct, b.l3_miss_target * 100.0, 1),
                cell(r.mispredict_pct, b.mispredict_target * 100.0, 2),
            ]);
        }
    }
    println!("{table}");
    let mean_err = ipc_err.iter().sum::<f64>() / ipc_err.len() as f64;
    let max_err = ipc_err.iter().cloned().fold(0.0, f64::max);
    println!(
        "IPC relative error: mean {:.1}%, max {:.1}%",
        mean_err * 100.0,
        max_err * 100.0
    );
}
