//! Architecture exploration with the substrate: replay identical workload
//! traces across machine variants and watch the suite respond — the
//! design-space study the paper motivates using CPU2017 for.
//!
//! Sweeps are trace-driven: each application's micro-op stream is generated
//! once on the baseline Haswell and replayed unchanged on every variant, so
//! differences are attributable to the hardware alone.
//!
//! ```text
//! cargo run --release --example cache_sweep
//! ```

use spec2017_workchar::workchar::characterize::RunConfig;
use spec2017_workchar::workchar::sensitivity::{issue_width_sweep, memory_latency_sweep};
use spec2017_workchar::workload_synth::cpu2017;

fn main() {
    let config = RunConfig::default();
    let apps: Vec<_> = ["505.mcf_r", "549.fotonik3d_r", "525.x264_r", "519.lbm_r"]
        .iter()
        .map(|n| cpu2017::app(n).expect("known app"))
        .collect();
    println!(
        "sweeping {} applications, traces generated once on {}\n",
        apps.len(),
        config.system.name
    );

    let latency = memory_latency_sweep(&apps, &config, &[120, 220, 320, 500]);
    println!("{}", latency.table().render_ascii());
    println!(
        "Memory-bound members (mcf, fotonik3d) pay for every added DRAM cycle;\n\
         the compute-bound ones (x264) barely notice — the contrast behind the\n\
         paper's memory-subsystem-provisioning discussion.\n"
    );

    let width = issue_width_sweep(&apps, &config, &[1, 2, 4, 6]);
    println!("{}", width.table().render_ascii());
    println!(
        "IPC saturates at the paper machine's 4-wide issue: the calibrated\n\
         workloads' inherent ILP is the binding constraint beyond that."
    );
}
