//! Regenerate the CPU2006-vs-CPU2017 comparison tables (Tables III–VII) —
//! the paper's answer to "is the new suite worth buying?".
//!
//! ```text
//! cargo run --release --example compare_suites
//! ```

use spec2017_workchar::workchar::characterize::RunConfig;
use spec2017_workchar::workchar::dataset::Dataset;
use spec2017_workchar::workchar::experiments::{self, ExperimentId};

fn main() {
    println!("characterizing CPU2017 + CPU2006 (this takes a minute)...\n");
    let data = Dataset::collect(RunConfig::default()).expect("dataset collects cleanly");
    for id in [
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
    ] {
        println!(
            "{}",
            experiments::run(id, &data)
                .expect("experiment runs")
                .render()
        );
    }
    println!("Headline shape checks against the paper:");
    println!(" - CPU17 overall IPC below CPU06 (fp applications drive the drop)");
    println!(" - instruction-mix percentages within a few points across suites");
    println!(" - CPU17 footprints several times larger than CPU06");
    println!(" - CPU17 L2 miss rates lower than CPU06; L1/L3 slightly higher");
}
