//! Downstream-user scenario: define a *custom* workload behaviour (an
//! application SPEC does not ship), run it through the same simulator, and
//! see where it would land among the CPU2017 applications in PC space.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use spec2017_workchar::stat_analysis::distance::Metric;
use spec2017_workchar::workchar::characterize::{characterize_pair, characterize_suite, RunConfig};
use spec2017_workchar::workchar::metrics::characteristic_rows;
use spec2017_workchar::workchar::redundancy::RedundancyAnalysis;
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::{
    AppInputPair, AppProfile, Behavior, InputProfile, InputSize, Suite,
};

fn main() {
    // A pointer-chasing, branchy in-memory database shard: high L1/L2
    // misses, big footprint, moderate mispredicts.
    let custom = Behavior {
        instructions_billions: 1400.0,
        ipc_target: 0.7,
        load_pct: 30.0,
        store_pct: 10.0,
        branch_pct: 22.0,
        mispredict_target: 0.03,
        l1_miss_target: 0.08,
        l2_miss_target: 0.55,
        l3_miss_target: 0.30,
        rss_gib: 4.0,
        vsz_gib: 4.5,
        code_kib: 900.0,
        ..Behavior::default()
    };
    let app = AppProfile {
        name: "901.kvstore_x".to_owned(),
        suite: Suite::RateInt,
        test: Vec::new(),
        train: Vec::new(),
        reference: vec![InputProfile {
            name: "in1".to_owned(),
            behavior: custom,
        }],
    };
    app.validate().expect("custom behaviour is well-formed");

    let config = RunConfig::default();
    let pair_list = app.pairs(InputSize::Ref);
    let pair: &AppInputPair<'_> = &pair_list[0];
    let custom_record =
        characterize_pair(pair, &config).expect("custom pair characterizes cleanly");
    println!("custom workload '{}' characterized:", custom_record.id);
    println!(
        "  IPC {:.3}   L1 {:.2}%  L2 {:.2}%  L3 {:.2}%  mispredict {:.2}%\n",
        custom_record.ipc,
        custom_record.l1_miss_pct,
        custom_record.l2_miss_pct,
        custom_record.l3_miss_pct,
        custom_record.mispredict_pct,
    );

    // Fit PCA on the real suite, then project the custom workload into the
    // same space and report its nearest CPU2017 neighbours.
    println!("characterizing the CPU2017 ref pairs for comparison...");
    let mut records = characterize_suite(&cpu2017::suite(), InputSize::Ref, &config)
        .expect("suite characterizes cleanly");
    let analysis = RedundancyAnalysis::fit_paper(&records).expect("PCA fits");
    records.push(custom_record);
    let rows = characteristic_rows(&records);
    let data =
        spec2017_workchar::stat_analysis::matrix::Matrix::from_rows(&rows).expect("matrix builds");
    let scores = analysis
        .pca
        .scores(&data, analysis.n_components)
        .expect("projection");

    let custom_row = scores.row(scores.rows() - 1).to_vec();
    let mut neighbours: Vec<(String, f64)> = (0..scores.rows() - 1)
        .map(|i| {
            let d = Metric::Euclidean
                .distance(scores.row(i), &custom_row)
                .expect("same dimensionality");
            (records[i].id.clone(), d)
        })
        .collect();
    neighbours.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));

    println!("\nnearest CPU2017 neighbours in PC space:");
    for (id, d) in neighbours.iter().take(5) {
        println!("  {id:24} distance {d:.3}");
    }
    println!("\nIf you already simulate one of these, the custom workload is");
    println!("likely redundant with it — the paper's subsetting argument,");
    println!("applied to your own application.");
}
