//! The paper's Section V pipeline as a standalone flow: characterize the
//! `rate` and `speed` ref pairs, PCA-reduce the 20 characteristics, cluster
//! hierarchically, pick the Pareto-knee cluster count, and print the
//! suggested representative subset with its time saving (Table X analogue).
//!
//! ```text
//! cargo run --release --example subset_selection
//! ```

use spec2017_workchar::stat_analysis::cluster::Linkage;
use spec2017_workchar::workchar::characterize::{characterize_suite, CharRecord, RunConfig};
use spec2017_workchar::workchar::redundancy::RedundancyAnalysis;
use spec2017_workchar::workchar::subset::SubsetAnalysis;
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

fn main() {
    let config = RunConfig::default();
    println!("characterizing all CPU2017 ref pairs (this takes a minute)...");
    let records = characterize_suite(&cpu2017::suite(), InputSize::Ref, &config)
        .expect("suite characterizes cleanly");
    println!("collected {} ref application-input pairs\n", records.len());

    for (label, keep_speed) in [("rate", false), ("speed", true)] {
        let group: Vec<&CharRecord> = records
            .iter()
            .filter(|r| r.suite.is_speed() == keep_speed)
            .collect();
        let owned: Vec<CharRecord> = group.iter().map(|&r| r.clone()).collect();

        let analysis = RedundancyAnalysis::fit_paper(&owned).expect("enough pairs for PCA");
        println!(
            "[{label}] PCA keeps {} components covering {:.1}% of variance \
             (paper: 4 components, 76.3%)",
            analysis.n_components,
            analysis.explained * 100.0
        );

        let subset = SubsetAnalysis::fit(&group, &analysis.score_rows(), Linkage::Average)
            .expect("subset analysis");
        println!(
            "[{label}] Pareto-optimal cluster count: k = {} (paper: rate 12, speed 10)",
            subset.chosen_k
        );
        println!("[{label}] suggested subset:");
        for id in subset.representative_ids() {
            println!("    {id}");
        }
        println!(
            "[{label}] subset time {:.1}s vs full {:.1}s -> {:.1}% saving \
             (paper: rate 57.1%, speed 62.1%)\n",
            subset.subset_seconds,
            subset.full_seconds,
            subset.saving_pct()
        );
    }
}
