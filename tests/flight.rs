//! Flight-recorder regression: a pair that panics mid-campaign must leave
//! a dump on disk that names the failing pair.
//!
//! This file holds exactly one test because it enables the process-global
//! metrics flag and installs the process-global panic hook; keeping it in
//! its own integration-test binary gives it a process to itself.

use spec2017_workchar::simmetrics;
use spec2017_workchar::workchar::characterize::{characterize_pairs_report, RunConfig};
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::{
    AppInputPair, AppProfile, Behavior, InputProfile, InputSize, Suite,
};

/// One healthy pair plus one whose behavior profile fails validation, which
/// the scheduler surfaces as an injected panic (retried once, then reported).
fn poisoned_apps() -> Vec<AppProfile> {
    let bad_behavior = Behavior {
        load_pct: 90.0,
        store_pct: 20.0,
        ..Default::default()
    };
    let bad_input = InputProfile {
        name: "impossible".into(),
        behavior: bad_behavior,
    };
    let bad = AppProfile {
        name: "999.broken_r".into(),
        suite: Suite::RateInt,
        test: vec![bad_input.clone()],
        train: vec![bad_input.clone()],
        reference: vec![bad_input],
    };
    vec![cpu2017::app("505.mcf_r").unwrap(), bad]
}

#[test]
fn injected_panic_dumps_flight_recorder_with_failing_pair_id() {
    let dir = std::env::temp_dir().join(format!("flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight-recorder.json");

    simmetrics::enable();
    simmetrics::flight::install_dump(&dump);

    let apps = poisoned_apps();
    let pairs: Vec<AppInputPair<'_>> = apps.iter().flat_map(|a| a.pairs(InputSize::Ref)).collect();
    let report = characterize_pairs_report(&pairs, &RunConfig::quick(), None, |_| {});
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].label, "999.broken_r");

    let text = std::fs::read_to_string(&dump).expect("panic hook wrote the dump");
    assert!(
        text.contains("999.broken_r"),
        "dump lacks the failing pair id: {text}"
    );
    assert!(
        text.contains("\"kind\":\"panic\""),
        "dump lacks the panic event itself: {text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
