//! End-to-end properties of the simpoint subsystem, pinned at the
//! workspace level: the exactness anchor (k = n reconstructs the reference
//! bit-identically), the acceptance floor (≥ 5x fewer detailed ops at
//! ≤ 5% headline counter error on real roster pairs), and off-path purity
//! (running a simpoint analysis perturbs nothing the characterization
//! pipeline measures).

use spec2017_workchar::simpoint::{analyze, GapMode, SimpointConfig};
use spec2017_workchar::uarch_sim::counters::Event;
use spec2017_workchar::workchar::characterize::{characterize_pair, prepared_run, RunConfig};
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

fn quick() -> RunConfig {
    RunConfig::quick()
}

/// With every interval its own cluster there are no gaps to approximate:
/// the sparse replay degenerates to a full chunked run and reconstruction
/// must be *bit-identical* to the reference — in both gap modes, since no
/// interval is ever warmed or skipped.
#[test]
fn k_equal_to_n_reconstructs_bit_identically() {
    let run = quick();
    let app = cpu2017::app("505.mcf_r").unwrap();
    let pair = &app.pairs(InputSize::Ref)[0];
    let (trace, hints) = prepared_run(pair, &run).unwrap();
    let interval_ops = 10_000u64;
    let n = trace.remaining().div_ceil(interval_ops) as usize;
    for gap_mode in [GapMode::Warm, GapMode::Skip] {
        let config = SimpointConfig {
            interval_ops,
            force_k: Some(n),
            gap_mode,
            ..SimpointConfig::default()
        };
        let a = analyze(&run.system, &trace, &hints, &config).unwrap();
        assert_eq!(a.k(), n);
        assert_eq!(a.simulated_ops, a.total_ops);
        assert_eq!(
            a.estimate, a.reference,
            "k = n must be bit-identical under {gap_mode:?}"
        );
        for ev in Event::ALL {
            assert_eq!(a.counter_error(ev), 0.0, "{ev} under {gap_mode:?}");
        }
    }
}

/// The ISSUE acceptance floor, on real roster pairs spanning the suite's
/// behaviour range: memory-bound int (mcf), pointer-chasing int (omnetpp),
/// cache-friendly int (x264), and memory-streaming fp (lbm).
#[test]
fn roster_pairs_meet_speedup_and_error_floor() {
    let run = quick();
    for name in ["505.mcf_r", "520.omnetpp_r", "525.x264_r", "619.lbm_s"] {
        let app = cpu2017::app(name).unwrap();
        let pair = &app.pairs(InputSize::Ref)[0];
        let (trace, hints) = prepared_run(pair, &run).unwrap();
        let a = analyze(&run.system, &trace, &hints, &SimpointConfig::default()).unwrap();
        assert!(
            a.speedup() >= 5.0,
            "{name}: speedup {:.1}x below the 5x floor",
            a.speedup()
        );
        assert!(
            a.max_headline_error() <= 0.05,
            "{name}: headline error {:.2}% above 5%",
            a.max_headline_error() * 100.0
        );
        // Under the default warm mode every op either counts or warms.
        assert_eq!(a.simulated_ops + a.warmed_ops, a.total_ops, "{name}");
        assert_eq!(a.skipped_ops, 0, "{name}");
    }
}

/// Running a simpoint analysis must not perturb anything the ordinary
/// characterization pipeline measures: the analysis clones its generator
/// and builds its own engines, so a characterization made after an
/// analysis is bit-identical to one made before.
#[test]
fn simpoint_analysis_leaves_characterization_untouched() {
    let run = quick();
    let app = cpu2017::app("541.leela_r").unwrap();
    let pair = &app.pairs(InputSize::Ref)[0];
    let before = characterize_pair(pair, &run).unwrap();
    let (trace, hints) = prepared_run(pair, &run).unwrap();
    let remaining = trace.remaining();
    analyze(&run.system, &trace, &hints, &SimpointConfig::default()).unwrap();
    assert_eq!(trace.remaining(), remaining, "caller's generator untouched");
    let after = characterize_pair(pair, &run).unwrap();
    assert_eq!(before, after, "characterization must be unaffected");
}
