//! Bit-determinism of the whole reproduction: identical configuration must
//! yield identical records, analyses, and rendered artifacts.

use spec2017_workchar::workchar::characterize::{characterize_pair, RunConfig};
use spec2017_workchar::workchar::redundancy::RedundancyAnalysis;
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

#[test]
fn characterization_is_bit_deterministic() {
    let config = RunConfig::quick();
    for name in ["505.mcf_r", "603.bwaves_s", "657.xz_s"] {
        let app = cpu2017::app(name).expect("known app");
        for pair in app.pairs(InputSize::Ref) {
            let a = characterize_pair(&pair, &config).unwrap();
            let b = characterize_pair(&pair, &config).unwrap();
            assert_eq!(a, b, "{name} differs across identical runs");
        }
    }
}

#[test]
fn analysis_is_deterministic() {
    let config = RunConfig::quick();
    let apps = vec![
        cpu2017::app("505.mcf_r").unwrap(),
        cpu2017::app("519.lbm_r").unwrap(),
        cpu2017::app("541.leela_r").unwrap(),
        cpu2017::app("525.x264_r").unwrap(),
    ];
    let run = || {
        let records = spec2017_workchar::workchar::characterize::characterize_suite(
            &apps,
            InputSize::Ref,
            &config,
        )
        .unwrap();
        let analysis = RedundancyAnalysis::fit_paper(&records).expect("pca fits");
        analysis.score_rows()
    };
    assert_eq!(run(), run());
}

#[test]
fn input_sizes_differ_but_share_structure() {
    // test/train/ref of the same app are different runs (different seeds and
    // volumes) but the same application identity.
    let config = RunConfig::quick();
    let app = cpu2017::app("505.mcf_r").unwrap();
    let test = characterize_pair(&app.pairs(InputSize::Test)[0], &config).unwrap();
    let reference = characterize_pair(&app.pairs(InputSize::Ref)[0], &config).unwrap();
    assert_ne!(test.session, reference.session);
    assert!(reference.instructions_billions > test.instructions_billions * 5.0);
    // IPC stays in the same ballpark across sizes (paper Table II for int).
    assert!((test.ipc - reference.ipc).abs() < 0.5);
}
