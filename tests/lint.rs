//! Static-analysis integration: the `simcheck` rule families against the
//! shipped rosters (golden: everything lints clean) and against
//! deliberately corrupted profiles, configs, cached entries, and event
//! streams (negative: each family fires with its stable rule code).

use spec2017_workchar::simcheck::{self, Severity};
use spec2017_workchar::simstore::{key_of, Store};
use spec2017_workchar::uarch_sim::config::{CacheConfig, SystemConfig};
use spec2017_workchar::uarch_sim::counters::Event;
use spec2017_workchar::uarch_sim::replacement::Policy;
use spec2017_workchar::workchar::cache::{encode_record, pair_key};
use spec2017_workchar::workchar::characterize::{characterize_pair, RunConfig};
use spec2017_workchar::workchar::lint as result_lint;
use spec2017_workchar::workload_synth::lint as profile_lint;
use spec2017_workchar::workload_synth::profile::{Behavior, InputSize};
use spec2017_workchar::workload_synth::{cpu2006, cpu2017};

fn haswell() -> SystemConfig {
    SystemConfig::haswell_e5_2650l_v3()
}

// ---------------------------------------------------------------- golden

/// The shipped rosters — all 194 CPU2017 pairs across every input size,
/// plus the 29 CPU2006 pairs — and the paper's Haswell configuration must
/// lint completely clean: no errors, no warnings, and (roster-side) no
/// infos. This is the repository's own gate: any threshold change that
/// flags a shipped profile fails here, not in a user's campaign.
#[test]
fn shipped_rosters_and_config_lint_clean() {
    let cpu17 = cpu2017::suite();
    let cpu06 = cpu2006::suite();
    let total: usize = cpu17
        .iter()
        .chain(&cpu06)
        .flat_map(|a| InputSize::ALL.map(|s| a.pairs(s).len()))
        .sum();
    assert_eq!(total, 194 + 29, "roster shape changed — update this test");

    let config = RunConfig::default();
    let report = result_lint::check_campaign(&[&cpu17, &cpu06], &config);
    // The only accepted diagnostic is the documented C004 info: Haswell's
    // 30 MiB 20-way L3 genuinely has a non-power-of-two set count.
    assert!(!report.has_errors(), "{}", report.to_table());
    assert!(!report.has_warnings(), "{}", report.to_table());
    for d in report.diagnostics() {
        assert_eq!(d.code.code, "C004", "unexpected info: {d}");
    }
}

// ------------------------------------------------------------- P: profiles

#[test]
fn profile_rules_collect_every_violation() {
    let bad = Behavior {
        instructions_billions: -1.0, // P001
        load_pct: 80.0,
        store_pct: 30.0,     // P004 with loads+branches
        cond_frac: 0.2,      // P005: kinds no longer sum to 1
        l1_miss_target: 1.7, // P006
        ..Default::default()
    };
    let report = bad.check("999.bad_r/ref/in1", None);
    let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
    for expect in ["P001", "P004", "P005", "P006"] {
        assert!(codes.contains(&expect), "missing {expect} in {codes:?}");
    }
    // The legacy single-shot API still reports the *first* failure only.
    let err = bad.validate().unwrap_err();
    assert_eq!(err.what, "instructions_billions must be positive");
}

#[test]
fn duplicate_profiles_across_a_roster_warn() {
    let mut apps = vec![cpu2017::app("505.mcf_r").unwrap()];
    let mut clone = apps[0].clone();
    clone.name = "999.copycat_r".to_string();
    apps.push(clone);
    let report = profile_lint::check_roster(&apps, None);
    let dup: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code.code == "P015")
        .collect();
    assert!(!dup.is_empty(), "{}", report.to_table());
    assert_eq!(dup[0].severity, Severity::Warning);
    assert!(dup[0].span.object.starts_with("999.copycat_r/"));
}

// -------------------------------------------------------------- C: configs

#[test]
fn illegal_cache_geometry_is_rejected_with_codes() {
    // 12 KiB, 3-way, 48-byte lines: C001 (line not a power of two).
    let report = CacheConfig::try_new(12 * 1024, 3, 48, Policy::Lru).unwrap_err();
    assert!(report.has_errors());
    assert!(report.diagnostics().iter().any(|d| d.code.code == "C001"));

    let mut system = haswell();
    system.issue_width = 64; // C008
    system.l2.size_bytes = system.l3.size_bytes * 2; // C005 containment
    let report = system.check();
    let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
    assert!(codes.contains(&"C008"), "{codes:?}");
    assert!(codes.contains(&"C005"), "{codes:?}");
}

// -------------------------------------------------------------- R: results

#[test]
fn cached_result_audit_catches_corruption() {
    let root = std::env::temp_dir().join(format!("workchar-lint-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Store::open(&root).unwrap();
    let config = RunConfig::quick();
    let app = cpu2017::app("505.mcf_r").unwrap();
    let pair = &app.pairs(InputSize::Ref)[0];
    let record = characterize_pair(pair, &config).unwrap();
    store
        .put(pair_key(pair, &config), &encode_record(&record))
        .unwrap();

    // Genuine entry: clean.
    let (n, report) = result_lint::audit_cache(&store, Some(&config.system));
    assert_eq!(n, 1);
    assert!(report.is_empty(), "{}", report.to_table());

    // Tampered counters re-encoded under the same key: identity rules fire.
    let mut bad = record.clone();
    let l1h = bad.session.count(Event::MemLoadUopsRetiredL1Hit);
    bad.session.set(Event::MemLoadUopsRetiredL1Hit, l1h / 2);
    store
        .put(pair_key(pair, &config), &encode_record(&bad))
        .unwrap();
    // And a second entry whose payload is not a record at all.
    store.put(key_of("gibberish"), &[0u8; 16]).unwrap();

    let (n, report) = result_lint::audit_cache(&store, Some(&config.system));
    assert_eq!(n, 2);
    let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
    assert!(codes.contains(&"R001"), "{codes:?}");
    assert!(codes.contains(&"R021"), "{codes:?}");
    assert!(report.has_errors());
    let _ = std::fs::remove_dir_all(&root);
}

// ------------------------------------------------------------ S: simpoint

#[test]
fn simpoint_store_audit_catches_corruption() {
    use spec2017_workchar::simpoint::{self, SimpointConfig};
    use spec2017_workchar::workchar::simpoints::{analyze_pair, simpoint_key};

    let root = std::env::temp_dir().join(format!("workchar-splint-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Store::open(&root).unwrap();
    let run = RunConfig::quick();
    let sp = SimpointConfig::default();
    let app = cpu2017::app("505.mcf_r").unwrap();
    let pair = &app.pairs(InputSize::Ref)[0];
    let record = analyze_pair(pair, &run, &sp).unwrap();
    let key = simpoint_key(pair, &run, &sp);
    store.put(key, &record.encode()).unwrap();

    // Genuine record: clean.
    let (n, report) = simpoint::lint::audit_store(&store);
    assert_eq!(n, 1);
    assert!(report.is_empty(), "{}", report.to_table());

    // Tampered weights re-encoded under the same key: S001 fires. A second
    // entry whose payload is not a simpoint record at all: S005.
    let mut bad = record.clone();
    bad.weights[0] += 0.25;
    store.put(key, &bad.encode()).unwrap();
    store.put(key_of("sp-gibberish"), &[0u8; 12]).unwrap();

    let (n, report) = simpoint::lint::audit_store(&store);
    assert_eq!(n, 2);
    let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
    assert!(codes.contains(&"S001"), "{codes:?}");
    assert!(codes.contains(&"S005"), "{codes:?}");
    assert!(report.has_errors());
    let _ = std::fs::remove_dir_all(&root);
}

// --------------------------------------------------------------- E: events

#[test]
fn event_stream_rules_fire_with_line_numbers() {
    let good = concat!(
        r#"{"schema":1,"kind":"span","name":"collect","wall_ms":12.5}"#,
        "\n"
    );
    let (_, report) = spec2017_workchar::perfmon::check_events("ci.jsonl", good);
    assert!(report.is_empty(), "{}", report.to_table());

    let (_, report) = spec2017_workchar::perfmon::check_events("ci.jsonl", "");
    assert!(report.diagnostics().iter().any(|d| d.code.code == "E010"));

    let truncated = concat!(
        r#"{"schema":1,"kind":"event","name":"x"}"#,
        "\n",
        r#"{"schema":1,"kind":"event","#
    );
    let (_, report) = spec2017_workchar::perfmon::check_events("ci.jsonl", truncated);
    let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
    assert!(codes.contains(&"E011"), "{codes:?}");
    let spans: Vec<String> = report
        .diagnostics()
        .iter()
        .map(|d| d.span.to_string())
        .collect();
    assert!(
        spans.iter().any(|s| s.contains("ci.jsonl:2")),
        "line numbers missing: {spans:?}"
    );
}

// ------------------------------------------------------------- M: metrics

/// The pipeline's full metric registry — every series the substrate crates
/// and the characterization core can emit — must satisfy the M-rules:
/// Prometheus-legal names, no duplicates, sane labels, and the counter
/// `_total` suffix convention.
#[test]
fn pipeline_metric_registry_lints_clean() {
    spec2017_workchar::workchar::telemetry::register_pipeline_metrics();
    let snapshot = spec2017_workchar::simmetrics::snapshot();
    assert!(
        snapshot.series.len() >= 14,
        "expected the full pipeline registry, got {} series",
        snapshot.series.len()
    );
    let report = spec2017_workchar::simmetrics::lint::check_snapshot(&snapshot);
    assert!(report.is_empty(), "{}", report.to_table());
}

#[test]
fn metric_rules_fire_on_a_hostile_registry() {
    use spec2017_workchar::simmetrics::Registry;
    let r = Registry::new();
    r.counter("bad name", "space is not Prometheus-legal"); // M001 + M005
    r.counter_with(
        "demo_total",
        "counter",
        &[("le", "0.5"), ("le", "0.9")], // M004 twice
    );
    r.gauge("demo_total", "same name, different kind"); // M002
    let report = spec2017_workchar::simmetrics::lint::check_snapshot(&r.snapshot());
    let codes: Vec<&str> = report.diagnostics().iter().map(|d| d.code.code).collect();
    for code in ["M001", "M002", "M004", "M005"] {
        assert!(codes.contains(&code), "missing {code} in {codes:?}");
    }
    // M001–M004 are errors; the M005 suffix conventions only warn.
    assert!(report.has_errors(), "{}", report.to_table());
    assert_eq!(
        report.count(Severity::Warning),
        2,
        "exactly the two suffix-convention hits warn: {}",
        report.to_table()
    );
}

// --------------------------------------------------------- catalog surface

#[test]
fn every_rule_family_is_explainable() {
    for code in ["P004", "C010", "R020", "E010", "M002", "S003"] {
        let text = simcheck::explain(code).unwrap();
        assert!(text.contains(code), "{text}");
        assert!(text.len() > 80, "explanation too thin for {code}");
    }
    assert!(simcheck::explain("Z999").is_none());
}
