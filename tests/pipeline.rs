//! End-to-end integration: dataset collection → every experiment artifact.

use std::sync::OnceLock;

use spec2017_workchar::workchar::dataset::Dataset;
use spec2017_workchar::workchar::experiments::{self, correlation_notes, ExperimentId};
use spec2017_workchar::workload_synth::profile::InputSize;

fn demo() -> &'static Dataset {
    static DATA: OnceLock<Dataset> = OnceLock::new();
    DATA.get_or_init(Dataset::demo)
}

#[test]
fn all_twenty_experiments_render() {
    let data = demo();
    for artifact in experiments::run_all(data).unwrap() {
        let text = artifact.render();
        assert!(
            text.len() > 40,
            "{:?} renders trivially:\n{text}",
            artifact.id
        );
        // CSV rendering never panics and is parseable-ish.
        let csv = artifact.render_csv();
        for line in csv.lines().take(3) {
            assert!(!line.contains('\t'), "tabs in CSV: {line}");
        }
    }
}

#[test]
fn table2_sizes_ordered() {
    let data = demo();
    let artifact = experiments::run(ExperimentId::Table2, data).unwrap();
    let table = &artifact.tables[0];
    // Within each suite block, ref rows must report more instructions than
    // test rows.
    let value = |row: &Vec<String>, col: usize| -> f64 { row[col].parse().unwrap() };
    let rows = table.rows();
    for suite in ["rate int", "rate fp", "speed int", "speed fp"] {
        let test = rows.iter().find(|r| r[0] == suite && r[1] == "test");
        let reference = rows.iter().find(|r| r[0] == suite && r[1] == "ref");
        if let (Some(t), Some(r)) = (test, reference) {
            assert!(
                value(r, 3) > value(t, 3),
                "{suite}: ref instructions must exceed test"
            );
        }
    }
}

#[test]
fn comparison_tables_have_six_rows() {
    let data = demo();
    for id in [
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
    ] {
        let artifact = experiments::run(id, data).unwrap();
        assert_eq!(artifact.tables[0].n_rows(), 6, "{id}");
    }
}

#[test]
fn figures_contain_every_ref_pair() {
    let data = demo();
    let n_ref = data.cpu17_at(InputSize::Ref).len();
    let artifact = experiments::run(ExperimentId::Fig1, data).unwrap();
    let points: usize = artifact
        .figures
        .iter()
        .flat_map(|f| f.series())
        .map(|s| s.len())
        .sum();
    assert_eq!(points, n_ref, "fig1 must plot every ref pair exactly once");
}

#[test]
fn correlations_match_paper_signs() {
    // The paper reports negative correlations of footprint and miss rates
    // with IPC (Sections IV-C, IV-D).
    let notes = correlation_notes(demo());
    for (name, value) in notes {
        assert!(
            value < 0.1,
            "{name} should be non-positive-ish, got {value}"
        );
    }
}

#[test]
fn subset_analysis_is_actionable() {
    let data = demo();
    let artifact = experiments::run(ExperimentId::Table10, data).unwrap();
    let text = artifact.render();
    // Savings rows exist for both groups.
    assert!(text.contains("rate"));
    assert!(text.contains("speed"));
}
