//! Headline-shape claims of the paper, checked against the simulated
//! reproduction at reduced (quick) scale.
//!
//! Absolute numbers are not expected to match the authors' testbed; these
//! tests pin the *orderings and contrasts* the paper's narrative relies on.

use std::sync::OnceLock;

use spec2017_workchar::stat_analysis::cluster::Linkage;
use spec2017_workchar::workchar::characterize::{characterize_suite, CharRecord, RunConfig};
use spec2017_workchar::workchar::redundancy::RedundancyAnalysis;
use spec2017_workchar::workchar::subset::SubsetAnalysis;
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

/// One shared characterization of a representative app set at quick scale.
fn records() -> &'static Vec<CharRecord> {
    static RECORDS: OnceLock<Vec<CharRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| {
        let names = [
            "505.mcf_r",
            "519.lbm_r",
            "525.x264_r",
            "541.leela_r",
            "548.exchange2_r",
            "549.fotonik3d_r",
            "508.namd_r",
            "603.bwaves_s",
            "607.cactuBSSN_s",
            "619.lbm_s",
            "657.xz_s",
            "628.pop2_s",
        ];
        let apps: Vec<_> = names
            .iter()
            .map(|n| cpu2017::app(n).expect("known app"))
            .collect();
        characterize_suite(&apps, InputSize::Ref, &RunConfig::quick())
            .expect("paper-claims roster characterizes cleanly")
    })
}

fn record(id: &str) -> &'static CharRecord {
    records()
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("record {id}"))
}

#[test]
fn x264_has_highest_and_mcf_lowest_int_ipc() {
    // Fig. 1 headline: 525.x264_r fastest int app, 505.mcf_r slowest.
    let x264 = record("525.x264_r-in1").ipc;
    let mcf = record("505.mcf_r").ipc;
    assert!(x264 > 2.0 * mcf, "x264 {x264} vs mcf {mcf}");
}

#[test]
fn speed_fp_ipc_collapses() {
    // Table II: speed-fp IPC is less than half of rate-fp IPC.
    let rate_fp = record("549.fotonik3d_r").ipc.max(record("508.namd_r").ipc);
    let lbm_s = record("619.lbm_s").ipc;
    assert!(
        lbm_s < 0.2,
        "619.lbm_s must be the extreme low IPC, got {lbm_s}"
    );
    assert!(rate_fp > 1.0, "rate fp stays above 1.0");
}

#[test]
fn lbm_has_fewest_branches_and_most_stores() {
    // Fig. 2/3: 519.lbm_r lowest branch share; among the highest stores.
    let lbm = record("519.lbm_r");
    assert!(lbm.branch_pct < 2.0, "lbm branches {}", lbm.branch_pct);
    assert!(lbm.store_pct > 11.0, "lbm stores {}", lbm.store_pct);
    for r in records().iter().filter(|r| r.id != "519.lbm_r") {
        assert!(
            lbm.branch_pct <= r.branch_pct + 1e-9,
            "{} branchier than lbm",
            r.id
        );
    }
}

#[test]
fn exchange2_has_highest_store_share_of_int() {
    let ex = record("548.exchange2_r");
    assert!(ex.store_pct > 14.0, "exchange2 stores {}", ex.store_pct);
}

#[test]
fn leela_has_highest_mispredict_rate() {
    let leela = record("541.leela_r");
    for r in records().iter().filter(|r| r.app != "541.leela_r") {
        assert!(
            leela.mispredict_pct > r.mispredict_pct,
            "{} out-mispredicts leela ({} vs {})",
            r.id,
            r.mispredict_pct,
            leela.mispredict_pct
        );
    }
    assert!(leela.mispredict_pct > 5.0, "leela {}", leela.mispredict_pct);
}

#[test]
fn fotonik_has_highest_l2_miss_rate() {
    // Fig. 5: 549.fotonik3d_r highest rate-fp L2 local miss rate.
    let fotonik = record("549.fotonik3d_r");
    assert!(
        fotonik.l2_miss_pct > 55.0,
        "fotonik L2 {}",
        fotonik.l2_miss_pct
    );
    assert!(
        fotonik.l3_miss_pct > 35.0,
        "fotonik L3 {}",
        fotonik.l3_miss_pct
    );
}

#[test]
fn xz_s_has_largest_footprint() {
    let xz = record("657.xz_s-in1");
    for r in records().iter().filter(|r| r.app != "657.xz_s") {
        assert!(xz.rss_gib > r.rss_gib, "{} out-sizes xz_s", r.id);
    }
    assert!(xz.vsz_gib > xz.rss_gib);
}

#[test]
fn footprint_negatively_correlates_with_ipc() {
    // Section IV-C: RSS/VSZ vs IPC correlations of -0.465 / -0.510.
    let rs = records();
    let ipc: Vec<f64> = rs.iter().map(|r| r.ipc).collect();
    let rss: Vec<f64> = rs.iter().map(|r| r.rss_gib).collect();
    let c = spec2017_workchar::stat_analysis::summary::pearson(&rss, &ipc).unwrap();
    assert!(c < -0.2, "rss/ipc correlation {c}");
}

#[test]
fn bwaves_inputs_cluster_together_and_apart_from_cactu() {
    // Table IX / Fig. 7 validation on the full mechanism.
    let rs = records();
    let analysis = RedundancyAnalysis::fit_paper(rs).expect("pca fits");
    let refs: Vec<&CharRecord> = rs.iter().collect();
    let subset =
        SubsetAnalysis::fit(&refs, &analysis.score_rows(), Linkage::Average).expect("subset");
    // Find the first merge height joining the two bwaves inputs; it must be
    // far below the height at which cactuBSSN_s joins anything.
    let idx = |id: &str| rs.iter().position(|r| r.id == id).unwrap();
    let b1 = idx("603.bwaves_s-in1");
    let b2 = idx("603.bwaves_s-in2");
    let labels_at_two = subset.dendrogram.cut(rs.len() / 2).expect("cut");
    assert_eq!(
        labels_at_two[b1], labels_at_two[b2],
        "bwaves_s inputs must share a cluster well before the final merges"
    );
}

#[test]
fn subsetting_saves_majority_of_time() {
    let rs = records();
    let analysis = RedundancyAnalysis::fit_paper(rs).expect("pca fits");
    let refs: Vec<&CharRecord> = rs.iter().collect();
    let subset =
        SubsetAnalysis::fit(&refs, &analysis.score_rows(), Linkage::Average).expect("subset");
    assert!(subset.chosen_k < rs.len(), "subset must drop something");
    assert!(subset.saving_pct() > 20.0, "saving {}", subset.saving_pct());
}

#[test]
fn four_ish_components_explain_most_variance() {
    // Paper: 4 PCs cover 76.3%.
    let analysis = RedundancyAnalysis::fit_paper(records()).expect("pca fits");
    assert!((2..=6).contains(&analysis.n_components));
    assert!(
        analysis.explained >= 0.70,
        "explained {}",
        analysis.explained
    );
}
