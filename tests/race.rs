//! End-to-end concurrency auditing: a full characterization roster runs
//! with the simrace hooks recording, the vector-clock checker must find
//! nothing, and recording must not perturb results bit-for-bit.

use spec2017_workchar::simrace;
use spec2017_workchar::workchar::cache::encode_record;
use spec2017_workchar::workchar::characterize::{characterize_pair, characterize_pairs, RunConfig};
use spec2017_workchar::workload_synth::cpu2017;
use spec2017_workchar::workload_synth::profile::InputSize;

#[test]
fn full_roster_run_is_race_clean() {
    let config = RunConfig::quick();
    let apps = cpu2017::suite();
    let pairs: Vec<_> = apps.iter().flat_map(|a| a.pairs(InputSize::Ref)).collect();
    let _guard = simrace::test_support::enabled();
    let records = characterize_pairs(&pairs, &config).expect("roster characterizes");
    let events = simrace::drain();
    assert_eq!(records.len(), pairs.len());
    assert!(
        !events.is_empty(),
        "the scheduler must emit sync events while recording is on"
    );
    let report = simrace::checker::check_events("race/roster", &events);
    assert!(
        report.is_empty(),
        "full-roster run must be race-free:\n{}",
        report.to_table()
    );
}

#[test]
fn recording_does_not_perturb_results() {
    // The hooks observe synchronization; they must never change what the
    // pipeline computes. Same pair, recording off vs on, identical payload
    // bytes through the cache codec.
    let config = RunConfig::quick();
    let app = cpu2017::app("505.mcf_r").expect("known app");
    let pair = &app.pairs(InputSize::Ref)[0];
    let off = characterize_pair(pair, &config).expect("baseline run");
    let on = {
        let _guard = simrace::test_support::enabled();
        let record = characterize_pair(pair, &config).expect("recorded run");
        simrace::drain();
        record
    };
    assert_eq!(
        encode_record(&off),
        encode_record(&on),
        "sync recording changed the characterization payload"
    );
}
